#include "netemu/service/executor.hpp"

#include <algorithm>
#include <exception>
#include <vector>

#include "netemu/faultline/injector.hpp"
#include "netemu/service/planner.hpp"

namespace netemu {

namespace {
using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}
}  // namespace

QueryExecutor::QueryExecutor() : QueryExecutor(Options()) {}

QueryExecutor::QueryExecutor(Options options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_file,
             options_.cache_journal),
      pool_(options_.threads) {
  if (!options_.compute) {
    // Pass the executor's own pool down so estimate trials run concurrently;
    // measure_throughput's collaborative loop makes that safe even though
    // the compute itself occupies a pool worker.
    options_.compute = [this](const Query& q) {
      return plan_query(q, &pool_);
    };
  }
  if (options_.faults) cache_.set_fault_injector(options_.faults);
  if (options_.load_cache && !options_.cache_file.empty()) cache_.load();
  if (options_.hang_timeout_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard lock(mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  // Drain in-flight work first so every accepted computation lands in the
  // cache before it is persisted.
  pool_.shutdown();
  if (!options_.cache_file.empty()) cache_.save();
}

void QueryExecutor::watchdog_loop() {
  const auto timeout = std::chrono::milliseconds(
      std::max<std::uint64_t>(1, options_.hang_timeout_ms));
  const auto tick = std::chrono::milliseconds(std::clamp<std::uint64_t>(
      options_.hang_timeout_ms / 4, 1, 100));
  std::unique_lock lock(mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, tick, [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    const auto now = Clock::now();
    std::vector<std::shared_ptr<Flight>> hung;
    for (auto it = flights_.begin(); it != flights_.end();) {
      Flight& f = *it->second;
      if (!f.abandoned && now - f.started > timeout) {
        f.abandoned = true;
        ++stats_.hung;
        --pending_;  // free the admission slot its leader occupied
        hung.push_back(it->second);
        it = flights_.erase(it);
      } else {
        ++it;
      }
    }
    if (hung.empty()) continue;
    // Publish outside the executor lock: waiters take flight->mutex while
    // never holding mutex_, and the stuck compute task publishes the same
    // way when (if) it finishes — its publish is a no-op once done is set.
    lock.unlock();
    for (const auto& flight : hung) {
      {
        std::lock_guard flight_lock(flight->mutex);
        if (!flight->done) {
          flight->response.ok = false;
          flight->response.error =
              "query hung: cancelled by watchdog after " +
              std::to_string(options_.hang_timeout_ms) + " ms";
          flight->done = true;
        }
      }
      flight->cv.notify_all();
    }
    lock.lock();
  }
}

Response QueryExecutor::execute(const Query& q) {
  const auto start = Clock::now();
  const std::uint64_t key = q.cache_key();

  Response response;
  response.key = key;

  // refresh=true forces a recompute: skip the cache read but keep every
  // other gate (single-flight, admission, deadline).
  if (!q.refresh) {
    if (auto cached = cache_.get(key)) {
      std::lock_guard lock(mutex_);
      ++stats_.requests;
      ++stats_.cache_hits;
      response.ok = true;
      response.cache_hit = true;
      response.result = std::move(*cached);
      response.micros = micros_since(start);
      return response;
    }
  }

  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard lock(mutex_);
    ++stats_.requests;
    const auto it = flights_.find(key);
    if (it != flights_.end()) {
      flight = it->second;
      ++stats_.dedup_joins;
    } else {
      if (pending_ >= options_.max_queue) {
        ++stats_.rejected;
        response.error = "overloaded: admission queue full";
        response.overloaded = true;
        response.retry_after_ms = options_.retry_after_hint_ms;
        response.micros = micros_since(start);
        return response;
      }
      flight = std::make_shared<Flight>();
      flight->started = start;
      flights_[key] = flight;
      ++pending_;
      leader = true;
    }
  }

  if (leader) {
    const Query task_query = q;
    const bool accepted = pool_.submit([this, task_query, key, flight] {
      if (options_.faults) options_.faults->on_compute();
      Response computed;
      computed.key = key;
      const auto compute_start = Clock::now();
      try {
        computed.result = options_.compute(task_query).dump();
        computed.ok = true;
      } catch (const std::exception& e) {
        computed.error = e.what();
      } catch (...) {
        computed.error = "unknown planner failure";
      }
      record_compute_micros(micros_since(compute_start));
      // A failed recompute falls back to the previous cached value so a
      // transient planner fault degrades to slightly-stale instead of down.
      if (!computed.ok && options_.serve_stale_on_error) {
        if (auto stale = cache_.get(key)) {
          computed.ok = true;
          computed.stale = true;
          computed.error.clear();
          computed.result = std::move(*stale);
        }
      }
      {
        std::lock_guard lock(mutex_);
        if (computed.stale) {
          ++stats_.errors;
          ++stats_.stale_served;
        } else if (computed.ok) {
          ++stats_.computed;
        } else {
          ++stats_.errors;
        }
        // The watchdog may have abandoned this flight (erasing it and
        // freeing its slot); only unregister what is still registered, and
        // never double-decrement pending_.
        const auto it = flights_.find(key);
        if (it != flights_.end() && it->second == flight) {
          flights_.erase(it);
          --pending_;
        }
      }
      // Errors are not cached: a transient failure should not poison the
      // content address forever.  (Stale fallbacks are already in cache.)
      if (computed.ok && !computed.stale) cache_.put(key, computed.result);
      {
        std::lock_guard flight_lock(flight->mutex);
        // If the watchdog already published a "hung" error, the waiters are
        // gone; leave their response alone.
        if (!flight->done) {
          flight->response = std::move(computed);
          flight->done = true;
        }
      }
      flight->cv.notify_all();
    });
    if (!accepted) {
      {
        std::lock_guard lock(mutex_);
        const auto it = flights_.find(key);
        if (it != flights_.end() && it->second == flight) {
          flights_.erase(it);
          --pending_;
        }
        ++stats_.rejected;
      }
      // Wake any follower that joined between registration and rejection.
      {
        std::lock_guard flight_lock(flight->mutex);
        if (!flight->done) {
          flight->response.error = "executor shutting down";
          flight->done = true;
        }
      }
      flight->cv.notify_all();
      response.error = "executor shutting down";
      response.micros = micros_since(start);
      return response;
    }
  }

  const std::uint64_t deadline_ms =
      q.deadline_ms > 0 ? q.deadline_ms : options_.default_deadline_ms;
  {
    std::unique_lock flight_lock(flight->mutex);
    const bool done = flight->cv.wait_for(
        flight_lock, std::chrono::milliseconds(deadline_ms),
        [&flight] { return flight->done; });
    if (!done) {
      {
        std::lock_guard lock(mutex_);
        ++stats_.deadline_exceeded;
      }
      response.error = "deadline exceeded after " +
                       std::to_string(deadline_ms) + " ms";
      response.micros = micros_since(start);
      return response;
    }
    response = flight->response;
  }
  response.key = key;
  response.micros = micros_since(start);
  return response;
}

QueryExecutor::Stats QueryExecutor::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void QueryExecutor::record_compute_micros(double micros) {
  std::lock_guard lock(mutex_);
  const std::size_t window = std::max<std::size_t>(1, options_.compute_time_window);
  if (compute_micros_.size() < window) {
    compute_micros_.push_back(micros);
  } else {
    compute_micros_[compute_micros_next_] = micros;
  }
  compute_micros_next_ = (compute_micros_next_ + 1) % window;
  ++compute_micros_count_;
}

QueryExecutor::ComputeTimes QueryExecutor::compute_times() const {
  std::vector<double> window;
  ComputeTimes t;
  {
    std::lock_guard lock(mutex_);
    window = compute_micros_;
    t.samples = compute_micros_count_;
  }
  if (window.empty()) return t;
  std::sort(window.begin(), window.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(window.size() - 1) + 0.5);
    return window[idx];
  };
  t.p50_us = at(0.50);
  t.p95_us = at(0.95);
  return t;
}

std::size_t QueryExecutor::pending() const {
  std::lock_guard lock(mutex_);
  return pending_;
}

std::size_t QueryExecutor::active_flights() const {
  std::lock_guard lock(mutex_);
  return flights_.size();
}

double QueryExecutor::uptime_seconds() const {
  return std::chrono::duration<double>(Clock::now() - started_).count();
}

}  // namespace netemu
