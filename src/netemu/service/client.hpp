#pragma once
// Blocking client for the planner daemon: connect, send request documents,
// read response documents.  One Client per connection; not thread-safe
// (the protocol is request/response in order on one socket).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "netemu/util/json.hpp"

namespace netemu {

class LineChannel;

class Client {
 public:
  Client();
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to the daemon at 127.0.0.1:port.  False + *error on failure.
  bool connect(std::uint16_t port, std::string* error = nullptr);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request document, block for the response document.
  /// Returns nullopt + *error on transport or parse failure.
  std::optional<Json> request(const Json& request_doc,
                              std::string* error = nullptr);

  /// Raw variant: exchange pre-serialized lines (the bench's hot loop).
  bool request_raw(const std::string& request_line, std::string& response_line);

 private:
  int fd_ = -1;
  std::unique_ptr<LineChannel> channel_;  // persists read buffer across requests
};

}  // namespace netemu
