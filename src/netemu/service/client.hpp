#pragma once
// Blocking client for the planner daemon: connect, send request documents,
// read response documents.  One Client per connection; not thread-safe
// (the protocol is request/response in order on one socket).
//
// Resilience: request() retries transport failures (connection drops, torn
// responses, per-attempt timeouts) on a fresh connection with exponential
// backoff + deterministic jitter, and honors the server's "overloaded"
// shedding responses (sleeping the suggested retry_after_ms before trying
// again).  Retrying is safe because every query op is idempotent — results
// are content-addressed, so a request whose response was lost re-reads the
// same address.  request_raw() stays a single-attempt fast path.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "netemu/util/json.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

class LineChannel;
class FaultInjector;

class Client {
 public:
  struct RetryPolicy {
    int max_attempts = 3;  ///< total attempts per request() (>= 1)
    std::uint32_t base_backoff_ms = 10;   ///< first retry delay
    std::uint32_t max_backoff_ms = 500;   ///< exponential growth cap
    std::uint32_t attempt_timeout_ms = 0; ///< per-attempt socket send/recv
                                          ///< timeout; 0 = none
    bool retry_overloaded = true;  ///< retry shed responses after their hint
    std::uint64_t jitter_seed = 0; ///< 0 = derived per client
  };

  Client();
  explicit Client(RetryPolicy policy);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to the daemon at 127.0.0.1:port.  False + *error on failure.
  /// The port is remembered so retries can reconnect.
  bool connect(std::uint16_t port, std::string* error = nullptr);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request document, block for the response document, retrying
  /// per the policy.  Returns nullopt + *error when every attempt failed.
  std::optional<Json> request(const Json& request_doc,
                              std::string* error = nullptr);

  /// Raw variant: exchange pre-serialized lines (the bench's hot loop).
  /// Single attempt, no retries.
  bool request_raw(const std::string& request_line, std::string& response_line);

  /// Transport-level retries performed by request() so far (reconnects and
  /// overload backoffs both count).
  std::uint64_t retries() const { return retries_; }

  const RetryPolicy& policy() const { return policy_; }

  /// Route this client's socket I/O through a fault injector (chaos
  /// testing).  Not owned; must outlive the client.  nullptr disables.
  void set_fault_injector(FaultInjector* injector);

 private:
  bool reconnect(std::string* error);
  void backoff_sleep(int retry_index, std::uint64_t hint_ms);

  RetryPolicy policy_;
  Prng jitter_;
  int fd_ = -1;
  std::uint16_t port_ = 0;  ///< last successful connect target
  std::uint64_t retries_ = 0;
  FaultInjector* faults_ = nullptr;
  std::unique_ptr<LineChannel> channel_;  // persists read buffer across requests
};

}  // namespace netemu
