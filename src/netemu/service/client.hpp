#pragma once
// Blocking client for the planner daemon: connect, send request documents,
// read response documents.  One Client per connection; not thread-safe
// (the protocol is request/response in order on one socket).
//
// Resilience: request() retries transport failures (connection drops, torn
// responses, per-attempt timeouts) on a fresh connection with exponential
// backoff + deterministic jitter, and honors the server's "overloaded"
// shedding responses (sleeping the suggested retry_after_ms before trying
// again).  Retrying is safe because every query op is idempotent — results
// are content-addressed, so a request whose response was lost re-reads the
// same address.  A refused connection is the exception: the backend process
// is down, so request() fails fast (kConnectRefused, no backoff) and lets
// the caller — typically a FleetRouter — fail over to another backend.
// request_raw() stays a single-attempt fast path.
//
// Deadline budget: a request document carrying "deadline_ms" gets ONE
// budget for the whole request() — retries included.  Every backoff sleep
// and per-attempt socket timeout draws from what is left of that window,
// and retrying stops when the budget is spent, instead of each attempt
// being granted the full allowance over again (which could stretch a
// 200 ms deadline into seconds of client-side retrying).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "netemu/util/json.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

class LineChannel;
class FaultInjector;

/// Why a request failed at the transport level (RequestOutcome::failure).
/// The distinction matters to a multi-backend router: a refused connection
/// means the backend process is down — eject it and fail over immediately —
/// while a mid-request transport error may be transient and is worth the
/// retry/backoff loop.
enum class RequestFailure {
  kNone,            ///< a response document arrived (doc is set)
  kConnectRefused,  ///< backend down (ECONNREFUSED): failed fast, no backoff
  kTransport,       ///< connection lost / timed out mid-request
  kProtocol,        ///< response arrived but was not parseable JSON
  kOverloaded,      ///< final response was an admission-control shed
};

const char* request_failure_name(RequestFailure f);

class Client {
 public:
  struct RetryPolicy {
    int max_attempts = 3;  ///< total attempts per request() (>= 1)
    std::uint32_t base_backoff_ms = 10;   ///< first retry delay
    std::uint32_t max_backoff_ms = 500;   ///< exponential growth cap
    std::uint32_t attempt_timeout_ms = 0; ///< per-attempt socket send/recv
                                          ///< timeout; 0 = none
    bool retry_overloaded = true;  ///< retry shed responses after their hint
    std::uint64_t jitter_seed = 0; ///< 0 = derived per client
  };

  Client();
  explicit Client(RetryPolicy policy);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to the daemon at 127.0.0.1:port.  False + *error on failure.
  /// The port is remembered so retries can reconnect.
  bool connect(std::uint16_t port, std::string* error = nullptr);

  /// Remember `port` as the reconnect target without connecting yet; the
  /// first request() connects lazily (and a refused connect fails fast).
  void set_target(std::uint16_t port) { port_ = port; }

  bool connected() const { return fd_ >= 0; }
  void close();

  /// errno of the last failed connect() (0 when it succeeded).
  int last_connect_errno() const { return connect_errno_; }

  /// Send one request document, block for the response document, retrying
  /// per the policy.  Returns nullopt + *error when every attempt failed.
  std::optional<Json> request(const Json& request_doc,
                              std::string* error = nullptr);

  /// The structured result of one request(): the response document when any
  /// arrived (even a server-side error or a shed — those are authoritative),
  /// otherwise the transport-level failure kind.  A refused connection
  /// returns immediately with kConnectRefused — no backoff sleep, no
  /// further attempts — so a fleet router can eject the backend and fail
  /// over without eating the retry schedule.
  struct RequestOutcome {
    std::optional<Json> doc;
    RequestFailure failure = RequestFailure::kNone;
    std::string error;  ///< set when doc is absent
    int attempts = 0;   ///< attempts actually made
    bool ok() const { return doc && (*doc)["ok"].as_bool(); }
  };
  RequestOutcome request_outcome(const Json& request_doc);

  /// Raw variant: exchange pre-serialized lines (the bench's hot loop).
  /// Single attempt, no retries.
  bool request_raw(const std::string& request_line, std::string& response_line);

  /// Transport-level retries performed by request() so far (reconnects and
  /// overload backoffs both count).
  std::uint64_t retries() const { return retries_; }

  const RetryPolicy& policy() const { return policy_; }

  /// Route this client's socket I/O through a fault injector (chaos
  /// testing).  Not owned; must outlive the client.  nullptr disables.
  void set_fault_injector(FaultInjector* injector);

 private:
  bool reconnect(std::string* error);
  /// Backoff before retry `retry_index`; `cap_ms` (when nonzero) bounds the
  /// sleep to the remaining deadline budget.
  void backoff_sleep(int retry_index, std::uint64_t hint_ms,
                     std::uint64_t cap_ms);
  /// (Re)arm SO_RCVTIMEO/SO_SNDTIMEO on the current socket; 0 clears them.
  void apply_socket_timeout(std::uint64_t timeout_ms);

  RetryPolicy policy_;
  Prng jitter_;
  int fd_ = -1;
  std::uint16_t port_ = 0;  ///< reconnect target (last connect / set_target)
  int connect_errno_ = 0;
  /// A deadline budget shortened this connection's socket timeouts; the
  /// next unbudgeted request must restore the policy value first.
  bool socket_timeout_overridden_ = false;
  std::uint64_t retries_ = 0;
  FaultInjector* faults_ = nullptr;
  std::unique_ptr<LineChannel> channel_;  // persists read buffer across requests
};

}  // namespace netemu
