#include "netemu/embedding/partition.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "netemu/cut/bisection.hpp"
#include "netemu/graph/algorithms.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

const char* partition_strategy_name(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kBlock: return "block";
    case PartitionStrategy::kBfs: return "bfs";
    case PartitionStrategy::kRandom: return "random";
    case PartitionStrategy::kMatched: return "matched";
  }
  return "?";
}

namespace {

std::vector<std::uint32_t> blocks_of_order(const std::vector<Vertex>& order,
                                           std::uint32_t num_parts) {
  const std::size_t n = order.size();
  const std::uint64_t block = ceil_div(n, num_parts);
  std::vector<std::uint32_t> part(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    part[order[i]] = static_cast<std::uint32_t>(i / block);
  }
  return part;
}

std::vector<Vertex> bfs_order(const Multigraph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<Vertex> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  for (Vertex root = 0; root < n; ++root) {
    if (seen[root]) continue;
    seen[root] = true;
    order.push_back(root);
    for (std::size_t head = order.size() - 1; head < order.size(); ++head) {
      for (const Arc& a : g.neighbors(order[head])) {
        if (!seen[a.to]) {
          seen[a.to] = true;
          order.push_back(a.to);
        }
      }
    }
  }
  return order;
}

/// Recursively split `vertices` of g into `parts` groups using KL bisection
/// of the induced subgraph; emit group ids depth-first so sibling groups get
/// consecutive ids.
void recursive_split(const Multigraph& g, std::vector<Vertex> vertices,
                     std::uint32_t parts, std::uint32_t first_id,
                     std::vector<std::uint32_t>& out, Prng& rng) {
  if (parts <= 1 || vertices.size() <= 1) {
    for (Vertex v : vertices) out[v] = first_id;
    return;
  }
  // Induced subgraph on `vertices`.
  std::vector<std::uint32_t> local(g.num_vertices(), kNoVertex);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    local[vertices[i]] = static_cast<std::uint32_t>(i);
  }
  MultigraphBuilder b(vertices.size());
  for (const Edge& e : g.edges()) {
    if (local[e.u] != kNoVertex && local[e.v] != kNoVertex) {
      b.add_edge(local[e.u], local[e.v], e.mult);
    }
  }
  const Multigraph sub = std::move(b).build();
  const Bisection bi = sub.num_vertices() <= 16 ? exact_bisection(sub)
                                                : kl_bisection(sub, rng, 4);
  std::vector<Vertex> left, right;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    (bi.side[i] ? left : right).push_back(vertices[i]);
  }
  const std::uint32_t left_parts = parts / 2;
  recursive_split(g, std::move(left), left_parts, first_id, out, rng);
  recursive_split(g, std::move(right), parts - left_parts,
                  first_id + left_parts, out, rng);
}

}  // namespace

std::vector<std::uint32_t> partition_guest(const Multigraph& guest,
                                           std::uint32_t num_parts,
                                           PartitionStrategy strategy,
                                           Prng& rng) {
  assert(num_parts >= 1);
  const std::size_t n = guest.num_vertices();
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), 0u);
  switch (strategy) {
    case PartitionStrategy::kBlock:
      return blocks_of_order(order, num_parts);
    case PartitionStrategy::kBfs:
      return blocks_of_order(bfs_order(guest), num_parts);
    case PartitionStrategy::kRandom:
      shuffle(order, rng);
      return blocks_of_order(order, num_parts);
    case PartitionStrategy::kMatched: {
      std::vector<std::uint32_t> part(n, 0);
      recursive_split(guest, std::move(order), num_parts, 0, part, rng);
      return part;
    }
  }
  return blocks_of_order(order, num_parts);
}

MatchedPartition matched_partition(const Multigraph& guest,
                                   const Machine& host,
                                   std::uint32_t num_parts, Prng& rng) {
  MatchedPartition mp;
  mp.guest_slot =
      partition_guest(guest, num_parts, PartitionStrategy::kMatched, rng);

  // Split the host's processor set the same way so that slot i and slot i+1
  // (siblings in the recursion) land on nearby processors.
  const std::size_t procs = host.num_processors();
  assert(num_parts <= procs);
  std::vector<std::uint32_t> host_part(host.graph.num_vertices(), 0);
  {
    std::vector<Vertex> proc_vertices(procs);
    for (std::size_t i = 0; i < procs; ++i) {
      proc_vertices[i] = host.processor(i);
    }
    std::vector<std::uint32_t> part(host.graph.num_vertices(), 0);
    recursive_split(host.graph, std::move(proc_vertices), num_parts, 0, part,
                    rng);
    host_part = std::move(part);
  }
  // slot -> first processor index in that host group.
  mp.slot_to_proc.assign(num_parts, 0);
  std::vector<bool> filled(num_parts, false);
  for (std::size_t i = 0; i < procs; ++i) {
    const std::uint32_t slot = host_part[host.processor(i)];
    if (slot < num_parts && !filled[slot]) {
      mp.slot_to_proc[slot] = static_cast<std::uint32_t>(i);
      filled[slot] = true;
    }
  }
  // Any empty host group (possible when KL splits unevenly at tiny sizes)
  // falls back to identity.
  for (std::uint32_t s = 0; s < num_parts; ++s) {
    if (!filled[s]) mp.slot_to_proc[s] = s % procs;
  }
  return mp;
}

std::uint32_t max_load(const std::vector<std::uint32_t>& part,
                       std::uint32_t num_parts) {
  std::vector<std::uint32_t> load(num_parts, 0);
  for (std::uint32_t p : part) ++load[p];
  return *std::max_element(load.begin(), load.end());
}

}  // namespace netemu
