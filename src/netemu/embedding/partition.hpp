#pragma once
// Guest→host partitioners for the emulation engine: distribute n guest
// vertices over m host processors with balanced load ceil(n/m).
//
// Strategies (ablation knob in the engine):
//  * block     — guest vertex i goes to host slot floor(i / ceil(n/m));
//                respects the guest's index locality (good for grids).
//  * bfs       — like block but over a BFS ordering of the guest, which
//                recovers locality when the index order is meaningless.
//  * random    — balanced random assignment (the locality-free baseline).
//  * matched   — simultaneous recursive KL bisection of guest and host:
//                guest halves are assigned to host halves, so cut structure
//                on both sides is respected.

#include <cstdint>
#include <vector>

#include "netemu/topology/machine.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

enum class PartitionStrategy { kBlock, kBfs, kRandom, kMatched };

const char* partition_strategy_name(PartitionStrategy s);

/// part[v] in [0, num_parts): the host processor *slot* of guest vertex v.
/// (Slot i corresponds to host processor machine.processor(i).)
std::vector<std::uint32_t> partition_guest(const Multigraph& guest,
                                           std::uint32_t num_parts,
                                           PartitionStrategy strategy,
                                           Prng& rng);

/// Matched recursive-bisection partition: splits the guest (KL) and the host
/// processor set (KL on the host graph) in lockstep.  Returns guest slots
/// AND the slot -> host-processor-index mapping it chose.
struct MatchedPartition {
  std::vector<std::uint32_t> guest_slot;   ///< per guest vertex
  std::vector<std::uint32_t> slot_to_proc; ///< slot -> host processor index
};

MatchedPartition matched_partition(const Multigraph& guest,
                                   const Machine& host,
                                   std::uint32_t num_parts, Prng& rng);

/// Max load (guest vertices per slot) of a partition.
std::uint32_t max_load(const std::vector<std::uint32_t>& part,
                       std::uint32_t num_parts);

}  // namespace netemu
