#include "netemu/embedding/embedding.hpp"

#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace netemu {

Embedding embed_with_router(const Multigraph& guest, const Machine& host,
                            std::vector<Vertex> vertex_map, Router& router,
                            Prng& rng) {
  assert(vertex_map.size() == guest.num_vertices());
  assert(host.graph.num_vertices() > 0);
  (void)host;  // the router was built from `host`; kept for the contract
  Embedding emb;
  emb.vertex_map = std::move(vertex_map);
  emb.edge_paths.reserve(guest.num_edges());
  for (const Edge& e : guest.edges()) {
    const Vertex hu = emb.vertex_map[e.u];
    const Vertex hv = emb.vertex_map[e.v];
    if (hu == hv) {
      emb.edge_paths.push_back({hu});
    } else {
      emb.edge_paths.push_back(router.route(hu, hv, rng));
    }
  }
  return emb;
}

EmbeddingMetrics evaluate_embedding(const Multigraph& guest,
                                    const Multigraph& host,
                                    const Embedding& embedding) {
  if (embedding.edge_paths.size() != guest.num_edges()) {
    throw std::invalid_argument("evaluate_embedding: path count mismatch");
  }
  EmbeddingMetrics m;
  // Undirected host-edge loads keyed by canonical (min,max) pair.
  std::unordered_map<std::uint64_t, std::uint64_t> load;
  load.reserve(host.num_edges() * 2);

  double weighted_hops = 0.0;
  double total_weight = 0.0;
  const auto edges = guest.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto& path = embedding.edge_paths[i];
    const std::uint32_t mult = edges[i].mult;
    const auto hops = static_cast<std::uint32_t>(
        path.empty() ? 0 : path.size() - 1);
    m.dilation = std::max(m.dilation, hops);
    weighted_hops += static_cast<double>(hops) * mult;
    total_weight += mult;
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      const Vertex a = std::min(path[j], path[j + 1]);
      const Vertex b = std::max(path[j], path[j + 1]);
      const std::uint32_t wires = host.multiplicity(a, b);
      if (wires == 0) {
        throw std::invalid_argument(
            "evaluate_embedding: walk uses a missing host edge");
      }
      const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
      // The paper's congestion counts paths per SIMPLE edge: a host pair
      // with w parallel wires spreads its load across them.
      const std::uint64_t l = (load[key] += mult);
      m.congestion = std::max(m.congestion, (l + wires - 1) / wires);
    }
  }
  m.avg_dilation = total_weight > 0 ? weighted_hops / total_weight : 0.0;
  return m;
}

}  // namespace netemu
