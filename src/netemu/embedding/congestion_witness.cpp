#include "netemu/embedding/congestion_witness.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace netemu {

CongestionWitness congestion_witness(const Machine& host,
                                     const Multigraph& traffic, Prng& rng) {
  if (traffic.num_vertices() > host.graph.num_vertices()) {
    throw std::invalid_argument(
        "congestion_witness: traffic graph larger than host");
  }
  std::vector<Vertex> identity(traffic.num_vertices());
  std::iota(identity.begin(), identity.end(), 0u);

  const auto router = make_default_router(host);
  const Embedding emb =
      embed_with_router(traffic, host, std::move(identity), *router, rng);
  const EmbeddingMetrics metrics =
      evaluate_embedding(traffic, host.graph, emb);

  CongestionWitness w;
  w.congestion = metrics.congestion;
  w.dilation = metrics.dilation;
  w.avg_dilation = metrics.avg_dilation;

  if (!host.forward_cap.empty()) {
    // Forwarding events: every vertex of a walk except the last departs
    // once per unit of multiplicity.
    std::vector<std::uint64_t> departures(host.graph.num_vertices(), 0);
    const auto edges = traffic.edges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const auto& path = emb.edge_paths[i];
      for (std::size_t j = 0; j + 1 < path.size(); ++j) {
        departures[path[j]] += edges[i].mult;
      }
    }
    for (std::size_t v = 0; v < departures.size(); ++v) {
      const std::uint32_t cap = host.forward_cap[v];
      if (cap == kUnlimitedForward || cap == 0) continue;
      w.node_congestion =
          std::max(w.node_congestion, (departures[v] + cap - 1) / cap);
    }
  }

  const std::uint64_t binding = std::max(w.congestion, w.node_congestion);
  if (binding > 0) {
    w.beta_graph = static_cast<double>(traffic.total_multiplicity()) /
                   static_cast<double>(binding);
  }
  return w;
}

}  // namespace netemu
