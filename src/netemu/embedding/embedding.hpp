#pragma once
// Embeddings of a guest multigraph into a host machine: a vertex map plus a
// host walk per guest edge.  Congestion / dilation of embeddings is the
// graph-theoretic half of the paper's bandwidth definition
// (β(H,T) = E(T)/C(H,T)), so these metrics are load-bearing everywhere.

#include <cstdint>
#include <vector>

#include "netemu/routing/router.hpp"
#include "netemu/topology/machine.hpp"

namespace netemu {

struct Embedding {
  /// guest vertex -> host vertex (not necessarily injective).
  std::vector<Vertex> vertex_map;
  /// Per guest edge (indexed like guest.edges()): the host walk carrying it.
  /// Guest edges whose endpoints share a host vertex get a length-1 walk.
  std::vector<std::vector<Vertex>> edge_paths;
};

struct EmbeddingMetrics {
  /// Max multiplicity-weighted load over undirected host edges — C(H, G).
  std::uint64_t congestion = 0;
  /// Max walk length in hops — the dilation δ(H, G).
  std::uint32_t dilation = 0;
  /// Multiplicity-weighted mean walk length — the average dilation.
  double avg_dilation = 0.0;
};

/// Route every guest edge along a (randomized) shortest host path between
/// the mapped endpoints, using the host's default router.
Embedding embed_with_router(const Multigraph& guest, const Machine& host,
                            std::vector<Vertex> vertex_map, Router& router,
                            Prng& rng);

/// Evaluate congestion/dilation of an embedding against a host graph.
EmbeddingMetrics evaluate_embedding(const Multigraph& guest,
                                    const Multigraph& host,
                                    const Embedding& embedding);

}  // namespace netemu
