#pragma once
// Congestion witnesses: the graph-theoretic bandwidth β(H,T) = E(T)/C(H,T)
// evaluated through a constructed (shortest-path) embedding of the traffic
// multigraph T into host H.  The constructed congestion upper-bounds the
// optimal C(H,T), so beta_graph here LOWER-bounds the true graph-theoretic
// bandwidth; Theorem 6 says it must land within a constant of the simulated
// delivery rate.

#include "netemu/embedding/embedding.hpp"
#include "netemu/topology/machine.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

struct CongestionWitness {
  std::uint64_t congestion = 0;  ///< C(H,T) witness (upper bound on optimum)
  /// For machines with per-node forwarding caps (bus hub, weak nodes): the
  /// max over nodes of (forwarding events / cap).  Pure edge congestion is
  /// blind to these, so β would be overestimated on e.g. the GlobalBus.
  std::uint64_t node_congestion = 0;
  std::uint32_t dilation = 0;
  double avg_dilation = 0.0;
  double beta_graph = 0.0;  ///< E(T) / max(congestion, node_congestion)
};

/// Traffic vertices must be host vertex ids (identity vertex map).
CongestionWitness congestion_witness(const Machine& host,
                                     const Multigraph& traffic, Prng& rng);

}  // namespace netemu
