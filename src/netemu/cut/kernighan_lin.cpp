#include <algorithm>
#include <limits>
#include <mutex>
#include <numeric>

#include "netemu/cut/bisection.hpp"
#include "netemu/util/thread_pool.hpp"

namespace netemu {

namespace {

/// One Kernighan–Lin refinement from an initial balanced cut.
///
/// Pair selection is the classic greedy variant: take the unlocked vertex of
/// maximum D-value on each side (O(n) per swap instead of the O(n²) exact
/// pair scan), then account the *exact* gain D[a]+D[b]-2w(a,b) of the chosen
/// pair, so the prefix-sum bookkeeping and the final cut value stay exact
/// even though the selection is approximate.  Passes repeat until no
/// improving prefix exists.
std::uint64_t kl_refine(const Multigraph& g, std::vector<bool>& side) {
  const std::size_t n = g.num_vertices();
  std::vector<std::int64_t> d(n, 0);
  auto recompute_d = [&] {
    std::fill(d.begin(), d.end(), 0);
    for (const Edge& e : g.edges()) {
      const auto m = static_cast<std::int64_t>(e.mult);
      if (side[e.u] != side[e.v]) {
        d[e.u] += m;
        d[e.v] += m;
      } else {
        d[e.u] -= m;
        d[e.v] -= m;
      }
    }
  };

  std::uint64_t current = cut_value(g, side);
  bool improved = true;
  while (improved) {
    improved = false;
    recompute_d();
    std::vector<bool> locked(n, false);
    std::vector<bool> work = side;
    std::vector<std::pair<Vertex, Vertex>> swaps;
    std::vector<std::int64_t> gains;

    const std::size_t count_a =
        static_cast<std::size_t>(std::count(side.begin(), side.end(), true));
    const std::size_t pass_len = std::min(count_a, n - count_a);
    swaps.reserve(pass_len);
    gains.reserve(pass_len);

    for (std::size_t step = 0; step < pass_len; ++step) {
      Vertex best_a = kNoVertex, best_b = kNoVertex;
      std::int64_t da = std::numeric_limits<std::int64_t>::min();
      std::int64_t db = std::numeric_limits<std::int64_t>::min();
      for (Vertex v = 0; v < n; ++v) {
        if (locked[v]) continue;
        if (work[v]) {
          if (d[v] > da) {
            da = d[v];
            best_a = v;
          }
        } else if (d[v] > db) {
          db = d[v];
          best_b = v;
        }
      }
      if (best_a == kNoVertex || best_b == kNoVertex) break;

      const std::int64_t w =
          static_cast<std::int64_t>(g.multiplicity(best_a, best_b));
      const std::int64_t gain = da + db - 2 * w;

      locked[best_a] = locked[best_b] = true;
      work[best_a] = false;
      work[best_b] = true;
      // Update D-values of unlocked neighbors as if the swap happened.
      for (const Arc& arc : g.neighbors(best_a)) {
        if (locked[arc.to]) continue;
        const auto m = static_cast<std::int64_t>(arc.mult);
        // best_a is now on side B (work == false).
        d[arc.to] += work[arc.to] != work[best_a] ? 2 * m : -2 * m;
      }
      for (const Arc& arc : g.neighbors(best_b)) {
        if (locked[arc.to]) continue;
        const auto m = static_cast<std::int64_t>(arc.mult);
        d[arc.to] += work[arc.to] != work[best_b] ? 2 * m : -2 * m;
      }
      swaps.emplace_back(best_a, best_b);
      gains.push_back(gain);
    }

    std::int64_t run = 0, best_run = 0;
    std::size_t best_prefix = 0;
    for (std::size_t i = 0; i < gains.size(); ++i) {
      run += gains[i];
      if (run > best_run) {
        best_run = run;
        best_prefix = i + 1;
      }
    }
    if (best_prefix > 0) {
      for (std::size_t i = 0; i < best_prefix; ++i) {
        side[swaps[i].first] = !side[swaps[i].first];
        side[swaps[i].second] = !side[swaps[i].second];
      }
      current -= static_cast<std::uint64_t>(best_run);
      improved = true;
    }
  }
  return current;
}

}  // namespace

Bisection kl_bisection(const Multigraph& g, Prng& rng, unsigned restarts,
                       ThreadPool* pool) {
  const std::size_t n = g.num_vertices();
  if (n <= 1 || restarts == 0) return Bisection{0, std::vector<bool>(n, false)};

  // Pre-generate a seed per restart and collect results by restart index,
  // breaking width ties by lowest index, so the returned cut (not just its
  // width) is identical at any thread count.
  std::vector<std::uint64_t> seeds(restarts);
  for (auto& s : seeds) s = rng();

  std::vector<Bisection> results(restarts);
  if (pool == nullptr) pool = &ThreadPool::global();
  pool->for_n(restarts, [&](std::size_t r) {
    Prng local(seeds[r]);
    std::vector<Vertex> order(n);
    std::iota(order.begin(), order.end(), 0u);
    shuffle(order, local);
    std::vector<bool> side(n, false);
    for (std::size_t i = 0; i < (n + 1) / 2; ++i) side[order[i]] = true;

    results[r].width = kl_refine(g, side);
    results[r].side = std::move(side);
  });

  std::size_t best = 0;
  for (std::size_t r = 1; r < restarts; ++r) {
    if (results[r].width < results[best].width) best = r;
  }
  return std::move(results[best]);
}

}  // namespace netemu
