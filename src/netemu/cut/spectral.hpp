#pragma once
// Spectral lower bound on bisection width.
//
// For a (multi)graph with Laplacian L and algebraic connectivity λ₂ (the
// Fiedler value), every balanced bipartition has cut value >= λ₂·n/4.
// This certifies that the KL heuristic's answer is within a known factor —
// heuristic width / spectral bound is reported by the ablation bench.
//
// λ₂ is computed by power iteration on (σI - L) with the all-ones vector
// deflated out; σ is a Gershgorin upper bound on the spectrum of L.

#include "netemu/graph/multigraph.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

struct SpectralResult {
  double lambda2 = 0.0;        ///< algebraic connectivity estimate
  double bisection_lb = 0.0;   ///< λ₂ · n / 4
  unsigned iterations = 0;     ///< power iterations actually used
};

SpectralResult fiedler_value(const Multigraph& g, Prng& rng,
                             unsigned max_iters = 2000, double tol = 1e-9);

}  // namespace netemu
