#include "netemu/cut/bisection.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace netemu {

std::uint64_t cut_value(const Multigraph& g, const std::vector<bool>& side) {
  std::uint64_t total = 0;
  for (const Edge& e : g.edges()) {
    if (side[e.u] != side[e.v]) total += e.mult;
  }
  return total;
}

namespace {

/// Depth-first enumeration of balanced vertex subsets with a simple bound:
/// once the running cut already exceeds the incumbent, prune.  Vertices are
/// processed in order; cut contribution is tracked incrementally against the
/// already-placed prefix.
class ExactSolver {
 public:
  explicit ExactSolver(const Multigraph& g)
      : g_(g), n_(g.num_vertices()), side_(n_, false) {}

  Bisection solve() {
    best_ = std::numeric_limits<std::uint64_t>::max();
    // Fix vertex 0 on side A to kill the mirror symmetry.
    side_[0] = true;
    recurse(1, 1, 0);
    return Bisection{best_, best_side_};
  }

 private:
  void recurse(std::size_t v, std::size_t count_a, std::uint64_t cut) {
    if (cut >= best_) return;
    const std::size_t half_a = (n_ + 1) / 2;
    const std::size_t remaining = n_ - v;
    if (count_a > half_a || count_a + remaining < n_ / 2) return;
    if (v == n_) {
      best_ = cut;
      best_side_.assign(side_.begin(), side_.end());
      return;
    }
    // Place v on each side; cut increases by multiplicity to the opposite
    // prefix side.
    std::uint64_t to_a = 0, to_b = 0;
    for (const Arc& a : g_.neighbors(static_cast<Vertex>(v))) {
      if (a.to < v) {
        (side_[a.to] ? to_a : to_b) += a.mult;
      }
    }
    side_[v] = true;
    recurse(v + 1, count_a + 1, cut + to_b);
    side_[v] = false;
    recurse(v + 1, count_a, cut + to_a);
  }

  const Multigraph& g_;
  std::size_t n_;
  std::vector<bool> side_;
  std::vector<bool> best_side_;
  std::uint64_t best_ = 0;
};

}  // namespace

Bisection exact_bisection(const Multigraph& g) {
  const std::size_t n = g.num_vertices();
  assert(n <= 32 && "exact bisection is exponential; use kl_bisection");
  if (n <= 1) return Bisection{0, std::vector<bool>(n, false)};
  return ExactSolver(g).solve();
}

Bisection bisection_auto(const Multigraph& g, Prng& rng,
                         std::size_t exact_cutoff) {
  if (g.num_vertices() <= exact_cutoff) return exact_bisection(g);
  return kl_bisection(g, rng);
}

}  // namespace netemu
