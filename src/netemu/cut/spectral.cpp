#include "netemu/cut/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace netemu {

namespace {

/// y = L x where L = D - A with edge multiplicities as weights.
void laplacian_apply(const Multigraph& g, const std::vector<double>& x,
                     std::vector<double>& y) {
  const std::size_t n = g.num_vertices();
  for (std::size_t v = 0; v < n; ++v) {
    double acc = static_cast<double>(g.degree(static_cast<Vertex>(v))) * x[v];
    for (const Arc& a : g.neighbors(static_cast<Vertex>(v))) {
      acc -= static_cast<double>(a.mult) * x[a.to];
    }
    y[v] = acc;
  }
}

double norm(const std::vector<double>& x) {
  double s = 0;
  for (double v : x) s += v * v;
  return std::sqrt(s);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Remove the component along the all-ones vector (L's null space for a
/// connected graph) and normalize.
bool deflate_and_normalize(std::vector<double>& x) {
  const double mean =
      std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(x.size());
  for (double& v : x) v -= mean;
  const double nm = norm(x);
  if (nm < 1e-300) return false;
  for (double& v : x) v /= nm;
  return true;
}

}  // namespace

SpectralResult fiedler_value(const Multigraph& g, Prng& rng,
                             unsigned max_iters, double tol) {
  SpectralResult result;
  const std::size_t n = g.num_vertices();
  if (n < 2) return result;

  // Gershgorin: all eigenvalues of L lie in [0, 2·max_degree].
  const double sigma = 2.0 * static_cast<double>(g.max_degree()) + 1.0;

  std::vector<double> x(n), y(n);
  for (double& v : x) v = rng.uniform() - 0.5;
  if (!deflate_and_normalize(x)) {
    x[0] = 1.0;  // degenerate random draw; pick a fixed start
    deflate_and_normalize(x);
  }

  // Power iteration on M = σI - L restricted to 1⊥: the dominant eigenvalue
  // of M there is σ - λ₂.
  double mu = 0.0;
  for (unsigned it = 0; it < max_iters; ++it) {
    laplacian_apply(g, x, y);
    for (std::size_t i = 0; i < n; ++i) y[i] = sigma * x[i] - y[i];
    if (!deflate_and_normalize(y)) break;
    laplacian_apply(g, y, x);  // Rayleigh quotient of L at y, reusing x
    const double rq = dot(y, x);
    x.swap(y);
    result.iterations = it + 1;
    if (std::abs(rq - mu) < tol * std::max(1.0, std::abs(rq))) {
      mu = rq;
      break;
    }
    mu = rq;
  }
  result.lambda2 = std::max(0.0, mu);
  result.bisection_lb = result.lambda2 * static_cast<double>(n) / 4.0;
  return result;
}

}  // namespace netemu
