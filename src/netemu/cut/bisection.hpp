#pragma once
// Bisection width machinery.
//
// Bandwidth under symmetric traffic is cut-limited: with m messages uniform
// over ordered pairs, ~m/2 of them must cross any balanced cut, and at most
// one message crosses a wire per tick, so β(M) <= 2·bw(M) up to rounding.
// The cut side of the bandwidth sandwich therefore needs a bisection-width
// oracle: exact for small graphs, Kernighan–Lin for medium, spectral lower
// bound for certification.

#include <cstdint>
#include <vector>

#include "netemu/graph/multigraph.hpp"
#include "netemu/util/prng.hpp"
#include "netemu/util/thread_pool.hpp"

namespace netemu {

/// Total multiplicity crossing the cut defined by side[] (true = side A).
std::uint64_t cut_value(const Multigraph& g, const std::vector<bool>& side);

/// A (floor(n/2), ceil(n/2)) cut and its value.
struct Bisection {
  std::uint64_t width = 0;
  std::vector<bool> side;
};

/// Exact minimum bisection by branch-and-bound over balanced subsets.
/// Practical for n <= ~28; asserts n <= 32.
Bisection exact_bisection(const Multigraph& g);

/// Kernighan–Lin heuristic with `restarts` random starting cuts; returns the
/// best (an upper bound on the true width).  Restart seeds are pre-drawn
/// from rng, so the result is identical at any thread count.  Restarts run
/// collaboratively on `pool` (nullptr = the global pool), which makes the
/// call safe from inside another pool's task.
Bisection kl_bisection(const Multigraph& g, Prng& rng, unsigned restarts = 8,
                       ThreadPool* pool = nullptr);

/// Best-effort bisection width: exact when n is small, KL otherwise.
Bisection bisection_auto(const Multigraph& g, Prng& rng,
                         std::size_t exact_cutoff = 20);

}  // namespace netemu
