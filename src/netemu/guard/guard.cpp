#include "netemu/guard/guard.hpp"

#include <algorithm>
#include <cmath>

namespace netemu::guard {

namespace {

scope::Counter& shed_rate_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_guard_rate_limited_total",
      "Queries shed because the client's token bucket was empty");
  return c;
}

scope::Counter& shed_share_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_guard_share_exceeded_total",
      "Queries shed because the client exceeded its fair-share cost cap");
  return c;
}

scope::Counter& brownout_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_guard_brownouts_total",
      "Estimate queries served with a reduced trial sweep under pressure");
  return c;
}

scope::Gauge& limit_gauge() {
  static scope::Gauge& g = scope::Registry::global().gauge(
      "netemu_guard_cost_limit",
      "AIMD-effective admission cost limit, in cost units");
  return g;
}

scope::Gauge& pressure_gauge() {
  static scope::Gauge& g = scope::Registry::global().gauge(
      "netemu_guard_pressure",
      "Pending admitted cost over the effective limit (>= 1 = gate closed)");
  return g;
}

}  // namespace

void DrainRate::note(double busy_ms, std::uint64_t cost,
                     std::size_t workers) {
  if (busy_ms < 0.0 || cost == 0) return;
  // One flight's wall time covers `cost` units, and `workers` flights drain
  // in parallel: the backlog retires one unit every busy/(cost*workers) ms.
  const double per_unit =
      busy_ms / (static_cast<double>(cost) *
                 static_cast<double>(std::max<std::size_t>(1, workers)));
  constexpr double kAlpha = 0.2;
  ms_per_unit_ = samples_ == 0
                     ? per_unit
                     : (1.0 - kAlpha) * ms_per_unit_ + kAlpha * per_unit;
  ++samples_;
}

std::uint64_t DrainRate::hint_ms(double backlog_units,
                                 std::uint64_t fallback_ms) const {
  if (samples_ == 0) return fallback_ms;
  const double raw = std::max(0.0, backlog_units) * ms_per_unit_;
  // Floor at a quarter of the configured constant: an almost-empty backlog
  // still deserves a nonzero pause, or retries arrive before the dequeue.
  const double lo = std::max(1.0, static_cast<double>(fallback_ms) / 4.0);
  return static_cast<std::uint64_t>(std::clamp(raw, lo, 10000.0));
}

Guard::Guard(Options options, const scope::Histogram* execute_hist)
    : options_(std::move(options)),
      execute_hist_(execute_hist),
      started_(std::chrono::steady_clock::now()) {
  if (options_.cost_budget == 0) options_.cost_budget = 512;
  if (options_.rate_units_per_s > 0.0 && options_.rate_burst_units <= 0.0) {
    options_.rate_burst_units = 2.0 * options_.rate_units_per_s;
  }
  options_.client_share = std::clamp(options_.client_share, 0.01, 1.0);
  options_.brownout_keep = std::clamp(options_.brownout_keep, 0.01, 1.0);
  options_.limit_floor = std::max(1e-3, options_.limit_floor);
  options_.limit_ceiling =
      std::max(options_.limit_floor, options_.limit_ceiling);
  limit_ = static_cast<double>(options_.cost_budget);
  limit_gauge().set(limit_);
}

std::uint64_t Guard::now_ms() const {
  if (options_.clock_ms) return options_.clock_ms();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_)
          .count());
}

void Guard::refill_locked(ClientState& c, std::uint64_t now) const {
  if (options_.rate_units_per_s <= 0.0) return;
  const double elapsed_s =
      static_cast<double>(now - c.last_refill_ms) / 1000.0;
  c.tokens = std::min(options_.rate_burst_units,
                      c.tokens + elapsed_s * options_.rate_units_per_s);
  c.last_refill_ms = now;
}

Guard::ClientState& Guard::client_state_locked(const std::string& client,
                                               std::uint64_t now) {
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    if (clients_.size() >= options_.max_clients) evict_idle_locked(now);
    ClientState fresh;
    fresh.tokens = options_.rate_burst_units;  // strangers start with credit
    fresh.last_refill_ms = now;
    it = clients_.emplace(client, fresh).first;
  }
  it->second.last_seen_ms = now;
  return it->second;
}

void Guard::evict_idle_locked(std::uint64_t now) {
  // Bounded map: drop the least-recently-seen client with nothing in
  // flight.  A returning evictee re-enters with a full bucket — acceptable
  // for a stranger, and the map can never grow without bound.
  auto victim = clients_.end();
  for (auto it = clients_.begin(); it != clients_.end(); ++it) {
    if (it->second.in_flight_cost > 0) continue;
    if (victim == clients_.end() ||
        it->second.last_seen_ms < victim->second.last_seen_ms) {
      victim = it;
    }
  }
  if (victim != clients_.end()) clients_.erase(victim);
  (void)now;
}

void Guard::maybe_adjust_locked(std::uint64_t now) {
  if (!options_.adaptive || execute_hist_ == nullptr) return;
  if (now - last_adjust_ms_ < options_.adjust_interval_ms) return;
  last_adjust_ms_ = now;

  const scope::Histogram::Snapshot cur = execute_hist_->snapshot();
  if (!have_snapshot_) {
    last_snapshot_ = cur;
    have_snapshot_ = true;
    return;
  }
  // Delta snapshot: only the requests observed since the last adjustment
  // vote, so the controller reacts to the current latency regime instead of
  // the lifetime average.
  scope::Histogram::Snapshot delta;
  delta.count = cur.count - last_snapshot_.count;
  delta.sum = cur.sum - last_snapshot_.sum;
  for (std::size_t b = 0; b < scope::Histogram::kBuckets; ++b) {
    delta.buckets[b] = cur.buckets[b] - last_snapshot_.buckets[b];
  }
  last_snapshot_ = cur;
  if (delta.count < options_.adjust_min_samples) return;  // thin window

  const double p95_ms = delta.quantile(0.95) / 1000.0;  // hist is in us
  const double floor =
      options_.limit_floor * static_cast<double>(options_.cost_budget);
  const double ceiling =
      options_.limit_ceiling * static_cast<double>(options_.cost_budget);
  if (p95_ms > options_.target_p95_ms) {
    limit_ = std::max(floor, limit_ * options_.decrease_factor);
    ++counters_.limit_decreases;
  } else {
    limit_ = std::min(
        ceiling, limit_ + options_.increase_fraction *
                              static_cast<double>(options_.cost_budget));
    ++counters_.limit_increases;
  }
  limit_gauge().set(limit_);
}

Guard::Decision Guard::admit(const std::string& client, const Query& q,
                             std::uint64_t cost) {
  Decision d;
  std::lock_guard lock(mutex_);
  const std::uint64_t now = now_ms();
  ClientState& c = client_state_locked(client, now);
  refill_locked(c, now);

  // Rate limit first: it holds even on an idle executor (an idle server is
  // exactly when a greedy client could otherwise burn the whole budget).
  if (options_.rate_units_per_s > 0.0 && c.tokens < 1.0) {
    ++counters_.shed_rate;
    shed_rate_counter().inc();
    d.admit = false;
    d.reason = "client rate limited";
    // Hint: time until one unit of credit exists again.
    d.retry_after_ms = static_cast<std::uint64_t>(std::clamp(
        (1.0 - c.tokens) / options_.rate_units_per_s * 1000.0, 1.0,
        10000.0));
    return d;
  }

  // Cost backlog and fair share.  An empty executor admits anything (the
  // biggest legal estimate must stay servable when nothing competes), and a
  // client's first in-flight query is never share-blocked for the same
  // reason.
  if (pending_cost_ > 0 &&
      static_cast<double>(pending_cost_ + cost) > limit_) {
    ++counters_.shed_backlog;
    d.admit = false;
    d.reason = "cost budget full";
    return d;  // retry hint: executor's drain-rate estimate
  }
  const double share_cap = options_.client_share * limit_;
  if (c.in_flight_cost > 0 &&
      static_cast<double>(c.in_flight_cost + cost) > share_cap) {
    ++counters_.shed_share;
    shed_share_counter().inc();
    d.admit = false;
    d.reason = "client over fair share";
    return d;
  }

  // Admitted: charge the bucket (possibly into debt — the floor is -burst,
  // so a huge estimate is paid off by future refills instead of being
  // unservable) and the backlog.
  if (options_.rate_units_per_s > 0.0) {
    c.tokens = std::max(-options_.rate_burst_units,
                        c.tokens - static_cast<double>(cost));
  }
  c.in_flight_cost += cost;
  pending_cost_ += cost;
  ++counters_.admitted;

  // Brownout: under sustained pressure, estimates keep answering — with a
  // reduced sweep, marked degraded, never cached — before anything sheds.
  const double pressure = static_cast<double>(pending_cost_) / limit_;
  // Trial-range shards are exempt: shrinking a shard's sweep would change
  // which trials it covers and corrupt the scatter merge — under pressure a
  // shard either runs whole or sheds (docs/SCATTER.md).
  if (options_.brownout && pressure > options_.brownout_pressure &&
      q.kind == QueryKind::kEstimate && !q.has_trial_range() &&
      q.trials > options_.brownout_min_trials) {
    const auto kept = static_cast<unsigned>(std::ceil(
        static_cast<double>(q.trials) * options_.brownout_keep));
    d.trials = std::clamp(kept, options_.brownout_min_trials, q.trials - 1);
    d.brownout = true;
    ++counters_.brownouts;
    brownout_counter().inc();
  }
  pressure_gauge().set(static_cast<double>(pending_cost_) / limit_);
  return d;
}

void Guard::complete(const std::string& client, std::uint64_t cost) {
  std::lock_guard lock(mutex_);
  pending_cost_ -= std::min(pending_cost_, cost);
  auto it = clients_.find(client);
  if (it != clients_.end()) {
    it->second.in_flight_cost -=
        std::min(it->second.in_flight_cost, cost);
  }
  const std::uint64_t now = now_ms();
  maybe_adjust_locked(now);
  pressure_gauge().set(static_cast<double>(pending_cost_) / limit_);
}

void Guard::release(const std::string& client, std::uint64_t cost) {
  std::lock_guard lock(mutex_);
  pending_cost_ -= std::min(pending_cost_, cost);
  auto it = clients_.find(client);
  if (it != clients_.end()) {
    it->second.in_flight_cost -=
        std::min(it->second.in_flight_cost, cost);
  }
  pressure_gauge().set(static_cast<double>(pending_cost_) / limit_);
}

double Guard::pressure() const {
  std::lock_guard lock(mutex_);
  return limit_ > 0.0 ? static_cast<double>(pending_cost_) / limit_ : 0.0;
}

std::uint64_t Guard::pending_cost() const {
  std::lock_guard lock(mutex_);
  return pending_cost_;
}

std::uint64_t Guard::effective_limit() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::uint64_t>(limit_);
}

std::size_t Guard::clients_tracked() const {
  std::lock_guard lock(mutex_);
  return clients_.size();
}

Guard::Counters Guard::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

Json Guard::to_json() const {
  std::lock_guard lock(mutex_);
  Json doc = Json::object();
  doc["enabled"] = true;
  doc["cost_budget"] = options_.cost_budget;
  doc["limit"] = static_cast<std::uint64_t>(limit_);
  doc["pending_cost"] = pending_cost_;
  doc["pressure"] =
      limit_ > 0.0 ? static_cast<double>(pending_cost_) / limit_ : 0.0;
  doc["adaptive"] = options_.adaptive && execute_hist_ != nullptr;
  doc["clients"] = clients_.size();
  doc["admitted"] = counters_.admitted;
  doc["shed_backlog"] = counters_.shed_backlog;
  doc["shed_share"] = counters_.shed_share;
  doc["shed_rate"] = counters_.shed_rate;
  doc["brownouts"] = counters_.brownouts;
  doc["limit_increases"] = counters_.limit_increases;
  doc["limit_decreases"] = counters_.limit_decreases;
  return doc;
}

}  // namespace netemu::guard
