#pragma once
// netemu::guard — overload protection for the query service.
//
// Four cooperating pieces (docs/GUARD.md):
//
//  * cost-model admission: the executor admits estimated work units
//    (guard/cost.hpp), not query count, so one huge estimate and one
//    closed-form lookup stop being "equal" at the admission gate;
//  * per-client isolation: every query carries a client identity (the
//    "client" wire field, stamped per connection peer when absent); each
//    client gets a token bucket (average-rate cap with burst debt) and a
//    fair-share cap on in-flight cost, so a flood from one client sheds
//    that client, not everybody;
//  * adaptive concurrency: an AIMD controller resizes the effective cost
//    limit between a floor and a ceiling from the observed executor.execute
//    latency histogram (scope) — p95 above target multiplies the limit
//    down, p95 at/below target adds a fixed increment back;
//  * brownout: above a pressure threshold, estimate queries are served with
//    a reduced trial sweep, marked "degraded":true and never cached, before
//    the guard ever sheds them.
//
// The Guard itself is a decision box: the executor asks admit() before a
// flight is created, reports complete() when one finishes, and reads
// pressure()/to_json() for the health report.  It takes its own lock and
// may be called under the executor's.

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "netemu/scope/metrics.hpp"
#include "netemu/service/query.hpp"
#include "netemu/util/json.hpp"

namespace netemu::guard {

/// Backlog drain-rate estimator: an EWMA of "milliseconds of wall time the
/// executor needs to retire one cost unit", fed by completed computes.
/// Turns the shed retry_after_ms hint from a constant into
/// backlog x drain-time, clamped.  Not internally synchronized — the owner
/// (the executor) calls it under its own mutex.
class DrainRate {
 public:
  /// Record one completed flight: `busy_ms` wall time for `cost` units,
  /// drained by `workers` parallel workers.
  void note(double busy_ms, std::uint64_t cost, std::size_t workers);

  /// Dynamic backoff hint for a backlog of `backlog_units`: how long until
  /// the backlog has drained at the observed rate, clamped to
  /// [fallback/4, 10000] ms.  Returns `fallback_ms` unchanged until the
  /// first sample exists — a fresh executor keeps its configured constant
  /// (tests pin it), only a warmed-up one earns a dynamic hint.
  std::uint64_t hint_ms(double backlog_units, std::uint64_t fallback_ms) const;

  bool has_samples() const { return samples_ > 0; }
  double ms_per_unit() const { return ms_per_unit_; }

 private:
  double ms_per_unit_ = 0.0;
  std::uint64_t samples_ = 0;
};

struct Options {
  /// Master switch.  Off: the executor keeps its plain max_queue counter
  /// and none of the per-client machinery runs (library default, so
  /// embedded executors and existing tests keep seed behavior).
  bool enabled = false;

  /// Admission budget in cost units (guard/cost.hpp).  0 derives
  /// 8 x max_queue from the executor's options — eight closed-form units
  /// per legacy queue slot.
  std::uint64_t cost_budget = 0;

  /// One client's in-flight cost may not exceed this fraction of the
  /// effective limit while other work is pending (fair-share isolation).
  double client_share = 0.5;

  /// Per-client token bucket: average admission rate in units/second.
  /// 0 disables rate limiting.  A query costing more than the remaining
  /// tokens is admitted into debt (the bucket floor is -burst), so a huge
  /// estimate is paid off over time instead of being unservable.
  double rate_units_per_s = 0.0;
  /// Bucket depth; 0 = two seconds of refill.
  double rate_burst_units = 0.0;

  /// Bounded client map: least-recently-seen idle clients are evicted past
  /// this many (their bucket state resets — acceptable for strangers).
  std::size_t max_clients = 1024;

  /// AIMD adaptive concurrency.  `adaptive` is the kill switch: off pins
  /// the effective limit to cost_budget.
  bool adaptive = true;
  double target_p95_ms = 250.0;        ///< execute-latency target
  std::uint64_t adjust_interval_ms = 100;
  std::uint64_t adjust_min_samples = 8;  ///< skip adjust on thinner windows
  double decrease_factor = 0.7;        ///< multiplicative decrease
  double increase_fraction = 0.05;     ///< additive increase, x cost_budget
  double limit_floor = 0.125;          ///< x cost_budget
  double limit_ceiling = 2.0;          ///< x cost_budget

  /// Brownout: above this pressure (pending cost / effective limit),
  /// estimate queries run a reduced sweep instead of their full trials.
  bool brownout = true;
  double brownout_pressure = 0.75;
  double brownout_keep = 0.25;         ///< fraction of trials kept
  unsigned brownout_min_trials = 1;

  /// Test hook: monotonic milliseconds.  Unset = steady_clock.
  std::function<std::uint64_t()> clock_ms;
};

class Guard {
 public:
  struct Decision {
    bool admit = true;
    bool brownout = false;     ///< serve a reduced-quality answer
    unsigned trials = 0;       ///< reduced trial count when brownout
    std::string reason;        ///< shed reason when !admit
    /// Rate-limit sheds carry a token-refill hint; other sheds leave 0 and
    /// the executor computes a drain-rate hint instead.
    std::uint64_t retry_after_ms = 0;
  };

  /// `execute_hist` feeds the AIMD controller (the scope histogram the
  /// executor records every request's residency into); may be null, which
  /// disables adaptation.  Not owned; must outlive the guard.
  Guard(Options options, const scope::Histogram* execute_hist);

  /// Admission decision for one query about to become a flight leader.
  /// On admit the cost is charged (pending cost, client bucket + share);
  /// the caller MUST pair it with complete() or release().
  Decision admit(const std::string& client, const Query& q,
                 std::uint64_t cost);

  /// A charged flight finished (any outcome).  Also ticks the AIMD
  /// controller when its adjust interval has elapsed.
  void complete(const std::string& client, std::uint64_t cost);

  /// A charged flight was dropped without running (drain shed of a queued
  /// task, pool rejection): un-charge without feeding the controller.
  void release(const std::string& client, std::uint64_t cost);

  /// Pending admitted cost / effective limit.  >= 1.0 means the gate is
  /// effectively closed; the health report exposes it for fleet routing.
  double pressure() const;

  std::uint64_t pending_cost() const;
  std::uint64_t effective_limit() const;
  std::size_t clients_tracked() const;

  struct Counters {
    std::uint64_t admitted = 0;
    std::uint64_t shed_backlog = 0;   ///< cost budget full
    std::uint64_t shed_share = 0;     ///< client over fair share
    std::uint64_t shed_rate = 0;      ///< client token bucket empty
    std::uint64_t brownouts = 0;      ///< admits degraded by brownout
    std::uint64_t limit_increases = 0;
    std::uint64_t limit_decreases = 0;
  };
  Counters counters() const;

  /// Health-report block: enabled, limit, pending, pressure, counters.
  Json to_json() const;

  const Options& options() const { return options_; }

 private:
  struct ClientState {
    double tokens = 0.0;
    std::uint64_t last_refill_ms = 0;
    std::uint64_t in_flight_cost = 0;
    std::uint64_t last_seen_ms = 0;
  };

  std::uint64_t now_ms() const;
  ClientState& client_state_locked(const std::string& client,
                                   std::uint64_t now);
  void refill_locked(ClientState& c, std::uint64_t now) const;
  void maybe_adjust_locked(std::uint64_t now);
  void evict_idle_locked(std::uint64_t now);

  Options options_;
  const scope::Histogram* execute_hist_;
  const std::chrono::steady_clock::time_point started_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, ClientState> clients_;
  std::uint64_t pending_cost_ = 0;
  double limit_ = 0.0;  ///< AIMD-effective cost limit
  Counters counters_;
  std::uint64_t last_adjust_ms_ = 0;
  scope::Histogram::Snapshot last_snapshot_;
  bool have_snapshot_ = false;
};

}  // namespace netemu::guard
