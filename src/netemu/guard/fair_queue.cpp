#include "netemu/guard/fair_queue.hpp"

#include <algorithm>
#include <utility>

namespace netemu::guard {

namespace {
// A single queued task never needs more deficit than this many quanta, no
// matter its admission cost: DRR fairness only needs relative order, and an
// unbounded sched_cost would make the round loop spin for thousands of
// visits before a huge estimate dispatches.
constexpr std::uint64_t kMaxQuantaPerTask = 16;
}  // namespace

FairScheduler::FairScheduler(ThreadPool& pool, Options options)
    : pool_(pool), options_(options) {
  if (options_.max_concurrent == 0) {
    options_.max_concurrent = std::max<std::size_t>(1, pool_.size());
  }
  if (options_.quantum == 0) options_.quantum = 1;
}

bool FairScheduler::submit(const std::string& client, std::uint64_t cost,
                           std::function<void()> run,
                           std::function<void()> shed, double weight) {
  std::vector<Task> ready;
  bool fast = false;
  {
    std::lock_guard lock(mutex_);
    if (queued_ == 0 && running_ < options_.max_concurrent) {
      // Uncontended fast path: nothing queued and a slot free, so DRR
      // ordering is vacuous — skip the per-client queue machinery
      // entirely.  This keeps the guard near-free on an idle service.
      ++running_;
      fast = true;
    } else {
      ClientQueue& q = clients_[client];
      q.weight = std::max(0.1, weight);
      Task t;
      t.sched_cost =
          std::min(std::max<std::uint64_t>(1, cost),
                   options_.quantum * kMaxQuantaPerTask);
      t.run = std::move(run);
      t.shed = std::move(shed);
      q.tasks.push_back(std::move(t));
      ++queued_;
      if (!q.active) {
        q.active = true;
        ring_.push_back(client);
      }
      pump_locked(ready);
    }
  }
  if (fast) {
    Task t;
    t.sched_cost = 1;
    t.run = std::move(run);
    t.shed = std::move(shed);
    dispatch_one(std::move(t));
    return true;
  }
  dispatch(ready);
  return true;
}

void FairScheduler::pump_locked(std::vector<Task>& out) {
  // Deficit round robin over the active ring: each visit earns the client
  // quantum x weight; it dispatches from its FIFO while the head task fits
  // the deficit.  A drained client leaves the ring (and forfeits its
  // deficit, so idleness is not bankable).
  // running_ is bumped as each task moves to `out`, so it alone tracks the
  // claimed slots.
  while (running_ < options_.max_concurrent && queued_ > 0) {
    if (ring_.empty()) break;
    if (ring_pos_ >= ring_.size()) ring_pos_ = 0;
    const std::string name = ring_[ring_pos_];
    auto it = clients_.find(name);
    if (it == clients_.end() || it->second.tasks.empty()) {
      if (it != clients_.end()) {
        it->second.active = false;
        it->second.deficit = 0.0;
      }
      ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(ring_pos_));
      continue;  // same position now holds the next client
    }
    ClientQueue& q = it->second;
    q.deficit += static_cast<double>(options_.quantum) * q.weight;
    while (!q.tasks.empty() &&
           static_cast<double>(q.tasks.front().sched_cost) <= q.deficit &&
           running_ < options_.max_concurrent) {
      Task t = std::move(q.tasks.front());
      q.tasks.pop_front();
      --queued_;
      q.deficit -= static_cast<double>(t.sched_cost);
      ++running_;
      out.push_back(std::move(t));
    }
    if (q.tasks.empty()) {
      q.active = false;
      q.deficit = 0.0;
      ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(ring_pos_));
    } else {
      ++ring_pos_;
    }
  }
}

void FairScheduler::dispatch(std::vector<Task>& ready) {
  for (auto& task : ready) dispatch_one(std::move(task));
}

void FairScheduler::dispatch_one(Task&& task) {
  auto wrapped = [this, fn = std::move(task.run)]() {
    fn();
    std::vector<Task> next;
    {
      std::lock_guard lock(mutex_);
      --running_;
      pump_locked(next);
    }
    dispatch(next);
  };
  if (!pool_.submit(std::move(wrapped))) {
    // Pool is shutting down; the claimed slot never runs.  The task still
    // gets an answer: its shed callback runs inline on this thread.
    {
      std::lock_guard lock(mutex_);
      --running_;
    }
    if (task.shed) task.shed();
  }
}

std::size_t FairScheduler::shed_queued() {
  std::vector<std::function<void()>> sheds;
  {
    std::lock_guard lock(mutex_);
    for (auto& [name, q] : clients_) {
      for (auto& t : q.tasks) sheds.push_back(std::move(t.shed));
      q.tasks.clear();
      q.deficit = 0.0;
      q.active = false;
    }
    ring_.clear();
    ring_pos_ = 0;
    queued_ = 0;
  }
  for (auto& shed : sheds) {
    if (shed) shed();
  }
  return sheds.size();
}

std::size_t FairScheduler::queued() const {
  std::lock_guard lock(mutex_);
  return queued_;
}

std::size_t FairScheduler::running() const {
  std::lock_guard lock(mutex_);
  return running_;
}

}  // namespace netemu::guard
