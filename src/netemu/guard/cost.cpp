#include "netemu/guard/cost.hpp"

#include <algorithm>
#include <cmath>

namespace netemu::guard {

std::uint64_t query_cost(const Query& q) {
  switch (q.kind) {
    case QueryKind::kBandwidth:
    case QueryKind::kMaxHost:
    case QueryKind::kBounds:
      // Closed-form lookups and table solves: microseconds, flat in n.
      return 1;
    case QueryKind::kEstimate: {
      // The simulator's work is ~ nodes x trials (ticks per node-trial is
      // bounded for the families we build).  q.n is validated <= 1e7 and
      // trials <= 64, so the product stays well inside double precision.
      const double node_trials =
          std::max(2.0, q.n) * static_cast<double>(std::max(1u, q.trials));
      const double units = std::ceil(node_trials / kUnitNodeTrials);
      return static_cast<std::uint64_t>(std::max(1.0, units));
    }
  }
  return 1;
}

}  // namespace netemu::guard
