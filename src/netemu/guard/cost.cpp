#include "netemu/guard/cost.hpp"

#include <algorithm>
#include <cmath>

namespace netemu::guard {

std::uint64_t query_cost(const Query& q) {
  switch (q.kind) {
    case QueryKind::kBandwidth:
    case QueryKind::kMaxHost:
    case QueryKind::kBounds:
      // Closed-form lookups and table solves: microseconds, flat in n.
      return 1;
    case QueryKind::kEstimate: {
      // The simulator's work is ~ nodes x trials (ticks per node-trial is
      // bounded for the families we build).  q.n is validated <= 1e7 and
      // trials <= 64, so the product stays well inside double precision.
      // A trial-range shard is charged for its own trials — plus the
      // calibration trial it reruns when it excludes trial 0 — so a
      // scattered query pays at least the unsharded admission cost in
      // aggregate and cannot bypass the guard by splitting itself up.
      double trial_count = static_cast<double>(std::max(1u, q.trials));
      if (q.has_trial_range()) {
        trial_count = static_cast<double>(q.trial_hi - q.trial_lo +
                                          (q.trial_lo > 0 ? 1u : 0u));
      }
      const double node_trials = std::max(2.0, q.n) * trial_count;
      const double units = std::ceil(node_trials / kUnitNodeTrials);
      return static_cast<std::uint64_t>(std::max(1.0, units));
    }
  }
  return 1;
}

}  // namespace netemu::guard
