#pragma once
// Weighted deficit-round-robin dispatch across per-client queues.
//
// The thread pool's FIFO is fair between tasks, not between clients: a
// client that enqueues 500 tasks owns the next 500 slots.  FairScheduler
// sits between the executor and the pool — each client gets its own FIFO,
// and a DRR pass over the active clients decides which queued task is
// submitted next, so a flood from one client waits behind one-per-round
// service of everybody else.  Single-flight is unaffected: the executor
// still deduplicates by cache key before anything reaches the scheduler,
// and a task runs exactly once on the same pool threads as before.

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "netemu/util/thread_pool.hpp"

namespace netemu::guard {

class FairScheduler {
 public:
  struct Options {
    /// Tasks handed to the pool at once.  0 = pool thread count: every
    /// worker stays busy, and the DRR choice happens at each completion.
    std::size_t max_concurrent = 0;
    /// Deficit added per client per round, in cost units.
    std::uint64_t quantum = 64;
  };

  FairScheduler(ThreadPool& pool, Options options);

  /// Queue one task for `client`.  `run` executes on a pool thread; `shed`
  /// runs (inline, at most once, never both) if shed_queued() drops the
  /// task before it starts or the pool refuses it at dispatch (shutdown).
  bool submit(const std::string& client, std::uint64_t cost,
              std::function<void()> run, std::function<void()> shed,
              double weight = 1.0);

  /// Drop every queued-but-unstarted task, running its shed callback
  /// inline.  Returns how many were dropped.  Used on drain: tasks already
  /// on a pool thread finish, queued ones answer "draining" immediately.
  std::size_t shed_queued();

  std::size_t queued() const;
  std::size_t running() const;

 private:
  struct Task {
    std::uint64_t sched_cost;
    std::function<void()> run;
    std::function<void()> shed;
  };
  struct ClientQueue {
    std::deque<Task> tasks;
    double deficit = 0.0;
    double weight = 1.0;
    bool active = false;  ///< member of ring_
  };

  void pump_locked(std::vector<Task>& out);
  void dispatch(std::vector<Task>& ready);
  void dispatch_one(Task&& task);

  ThreadPool& pool_;
  Options options_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, ClientQueue> clients_;
  std::vector<std::string> ring_;  ///< active clients, round-robin order
  std::size_t ring_pos_ = 0;
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
};

}  // namespace netemu::guard
