#pragma once
// Query cost model: the unit the guard's admission control counts in.
//
// The paper's thesis is that the binding resource is communication work,
// not request count — and the service's expensive queries are exactly the
// ones that simulate communication.  Counting queries (max_queue) treats a
// closed-form beta lookup and a 64-trial million-node packet simulation as
// equal; counting estimated sim-ticks makes one greedy client's huge
// estimate cost what it actually costs.
//
// One cost unit is calibrated to "about one closed-form lookup" of work.
// An estimate's dominant term is (nodes simulated) x (trials), so its cost
// is n * trials scaled down to units; everything closed-form is 1.

#include <cstdint>

#include "netemu/service/query.hpp"

namespace netemu::guard {

/// Cost units one simulated node-trial is worth: an estimate of
/// n * trials node-trials costs max(1, n * trials / kUnitNodeTrials).
inline constexpr double kUnitNodeTrials = 1024.0;

/// Estimated admission cost of a query, in units.  Closed-form kinds
/// (bandwidth, max_host, bounds) cost 1; estimate scales with the simulated
/// work.  Deterministic: the same query always costs the same, so admission
/// decisions are reproducible under a seeded load.
std::uint64_t query_cost(const Query& q);

}  // namespace netemu::guard
