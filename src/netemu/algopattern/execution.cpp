#include "netemu/algopattern/execution.hpp"

#include <algorithm>

#include "netemu/cut/bisection.hpp"
#include "netemu/routing/router.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

PatternExecution execute_pattern(const AlgorithmPattern& pattern,
                                 const Machine& host, Prng& rng,
                                 const PatternExecutionOptions& options) {
  PatternExecution ex;
  ex.pattern_name = pattern.name;
  ex.host_name = host.name;
  ex.host_processors = host.num_processors();
  ex.native_rounds = pattern.rounds;

  // Owner map: contiguous blocks of pattern processors per host processor.
  const std::size_t procs = host.num_processors();
  const std::uint64_t block = ceil_div(pattern.processors, procs);
  std::vector<Vertex> owner(pattern.processors);
  for (std::size_t i = 0; i < pattern.processors; ++i) {
    owner[i] = host.processor(i / block);
  }

  // --- cut lower bound -------------------------------------------------------
  const Bisection cut = host.graph.num_vertices() <= 20
                            ? exact_bisection(host.graph)
                            : kl_bisection(host.graph, rng,
                                           options.kl_restarts);
  std::uint64_t crossing = 0;
  for (const auto& round : pattern.round_messages) {
    for (const Message& m : round) {
      const Vertex a = owner[m.src], b = owner[m.dst];
      if (a != b && cut.side[a] != cut.side[b]) ++crossing;
    }
  }
  if (cut.width > 0) {
    // One message per wire per direction per tick: 2x width serves both
    // directions.
    ex.cut_lower_bound = static_cast<double>(crossing) /
                         (2.0 * static_cast<double>(cut.width));
  }

  // --- measured schedule -----------------------------------------------------
  const auto router = make_default_router(host);
  PacketSimulator sim(host, options.arbitration);
  for (const auto& round : pattern.round_messages) {
    std::vector<std::vector<Vertex>> paths;
    paths.reserve(round.size());
    for (const Message& m : round) {
      const Vertex a = owner[m.src], b = owner[m.dst];
      if (a == b) continue;  // intra-processor messages are free
      paths.push_back(router->route(a, b, rng));
    }
    if (paths.empty()) {
      ex.measured_time += 1;  // a round still takes a step
    } else {
      ex.measured_time += sim.run_batch(paths, rng).makespan;
    }
  }

  const double rounds = std::max(1.0, static_cast<double>(pattern.rounds));
  ex.bound_slowdown = ex.cut_lower_bound / rounds;
  ex.measured_slowdown = static_cast<double>(ex.measured_time) / rounds;
  return ex;
}

}  // namespace netemu
