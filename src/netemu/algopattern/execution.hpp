#pragma once
// Executing an algorithm pattern on a host machine: the Lemma 8 cut lower
// bound on the routing time of the pattern's messages, and the measured
// time from actually running every round through the packet simulator.
//
// This is the machinery behind the paper's algorithm-level corollary: a
// lower bound on the bandwidth demand of an algorithm's communication
// pattern is a lower bound on the slowdown of ANY efficient redundant
// simulation of that algorithm on the host.

#include "netemu/algopattern/patterns.hpp"
#include "netemu/routing/packet_sim.hpp"
#include "netemu/topology/machine.hpp"

namespace netemu {

struct PatternExecution {
  std::string pattern_name;
  std::string host_name;
  std::size_t host_processors = 0;
  std::uint32_t native_rounds = 0;

  /// Lemma 8 / flux bound: messages forced across a (KL-)balanced host cut
  /// divided by the cut's wire count — a valid lower bound on total routing
  /// time for ANY schedule.
  double cut_lower_bound = 0.0;

  /// Sum of per-round makespans from the packet simulator (an achieved
  /// schedule, hence an upper bound on the optimum).
  std::uint64_t measured_time = 0;

  double bound_slowdown = 0.0;     ///< cut_lower_bound / native_rounds
  double measured_slowdown = 0.0;  ///< measured_time / native_rounds
};

struct PatternExecutionOptions {
  Arbitration arbitration = Arbitration::kFarthestFirst;
  unsigned kl_restarts = 6;
};

/// Pattern processors are assigned to host processors round-robin-free:
/// slot i -> host.processor(i % P) when the pattern is larger than the host
/// (contiguous blocks, preserving pattern index locality), 1-to-1 otherwise.
PatternExecution execute_pattern(const AlgorithmPattern& pattern,
                                 const Machine& host, Prng& rng,
                                 const PatternExecutionOptions& options = {});

}  // namespace netemu
