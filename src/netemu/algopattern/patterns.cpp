#include "netemu/algopattern/patterns.hpp"

#include <cassert>

#include "netemu/util/math.hpp"

namespace netemu {

namespace {

/// Build the aggregate multigraph from the rounds.
Multigraph aggregate(std::size_t n,
                     const std::vector<std::vector<Message>>& rounds) {
  MultigraphBuilder b(n);
  for (const auto& round : rounds) {
    for (const Message& m : round) {
      if (m.src != m.dst) b.add_edge(m.src, m.dst);
    }
  }
  return std::move(b).build();
}

}  // namespace

AlgorithmPattern fft_pattern(unsigned d) {
  assert(d >= 1);
  const std::size_t n = ipow(2, d);
  AlgorithmPattern p;
  p.name = "FFT(2^" + std::to_string(d) + ")";
  p.processors = n;
  p.rounds = d;
  for (unsigned i = 0; i < d; ++i) {
    std::vector<Message> round;
    round.reserve(n);
    for (std::size_t u = 0; u < n; ++u) {
      round.push_back({static_cast<Vertex>(u),
                       static_cast<Vertex>(u ^ (1ULL << i))});
    }
    p.round_messages.push_back(std::move(round));
  }
  p.traffic = aggregate(n, p.round_messages);
  return p;
}

AlgorithmPattern bitonic_sort_pattern(unsigned d) {
  assert(d >= 1);
  const std::size_t n = ipow(2, d);
  AlgorithmPattern p;
  p.name = "BitonicSort(2^" + std::to_string(d) + ")";
  p.processors = n;
  for (unsigned stage = 1; stage <= d; ++stage) {
    for (unsigned sub = stage; sub-- > 0;) {
      std::vector<Message> round;
      round.reserve(n);
      for (std::size_t u = 0; u < n; ++u) {
        round.push_back({static_cast<Vertex>(u),
                         static_cast<Vertex>(u ^ (1ULL << sub))});
      }
      p.round_messages.push_back(std::move(round));
    }
  }
  p.rounds = static_cast<std::uint32_t>(p.round_messages.size());
  p.traffic = aggregate(n, p.round_messages);
  return p;
}

AlgorithmPattern transpose_pattern(std::uint32_t side) {
  assert(side >= 2);
  const std::size_t n = static_cast<std::size_t>(side) * side;
  AlgorithmPattern p;
  p.name = "Transpose(" + std::to_string(side) + "x" + std::to_string(side) +
           ")";
  p.processors = n;
  p.rounds = 1;
  std::vector<Message> round;
  for (std::uint32_t r = 0; r < side; ++r) {
    for (std::uint32_t c = 0; c < side; ++c) {
      if (r != c) {
        round.push_back({static_cast<Vertex>(r * side + c),
                         static_cast<Vertex>(c * side + r)});
      }
    }
  }
  p.round_messages.push_back(std::move(round));
  p.traffic = aggregate(n, p.round_messages);
  return p;
}

AlgorithmPattern parallel_prefix_pattern(std::size_t n) {
  assert(n >= 2);
  AlgorithmPattern p;
  p.name = "ParallelPrefix(" + std::to_string(n) + ")";
  p.processors = n;
  for (std::size_t hop = 1; hop < n; hop *= 2) {
    std::vector<Message> round;
    for (std::size_t u = 0; u + hop < n; ++u) {
      round.push_back({static_cast<Vertex>(u),
                       static_cast<Vertex>(u + hop)});
    }
    p.round_messages.push_back(std::move(round));
  }
  p.rounds = static_cast<std::uint32_t>(p.round_messages.size());
  p.traffic = aggregate(n, p.round_messages);
  return p;
}

AlgorithmPattern stencil_pattern(const std::vector<std::uint32_t>& sides,
                                 std::uint32_t rounds) {
  std::size_t n = 1;
  for (std::uint32_t s : sides) n *= s;
  AlgorithmPattern p;
  p.name = "Stencil" + std::to_string(sides.size()) + "(" +
           std::to_string(n) + "x" + std::to_string(rounds) + "r)";
  p.processors = n;
  p.rounds = rounds;

  // One round: exchange with every axis neighbor, both directions.
  std::vector<Message> one_round;
  std::vector<std::uint32_t> coord(sides.size(), 0);
  for (std::size_t u = 0; u < n; ++u) {
    std::size_t stride = n;
    for (std::size_t d2 = 0; d2 < sides.size(); ++d2) {
      stride /= sides[d2];
      if (coord[d2] + 1 < sides[d2]) {
        one_round.push_back({static_cast<Vertex>(u),
                             static_cast<Vertex>(u + stride)});
        one_round.push_back({static_cast<Vertex>(u + stride),
                             static_cast<Vertex>(u)});
      }
    }
    for (std::size_t d2 = sides.size(); d2-- > 0;) {
      if (++coord[d2] < sides[d2]) break;
      coord[d2] = 0;
    }
  }
  for (std::uint32_t r = 0; r < rounds; ++r) {
    p.round_messages.push_back(one_round);
  }
  p.traffic = aggregate(n, p.round_messages);
  return p;
}

AlgorithmPattern all_to_all_pattern(std::size_t n) {
  assert(n >= 2);
  AlgorithmPattern p;
  p.name = "AllToAll(" + std::to_string(n) + ")";
  p.processors = n;
  p.rounds = 1;
  std::vector<Message> round;
  round.reserve(n * (n - 1));
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u != v) {
        round.push_back({static_cast<Vertex>(u), static_cast<Vertex>(v)});
      }
    }
  }
  p.round_messages.push_back(std::move(round));
  p.traffic = aggregate(n, p.round_messages);
  return p;
}

AlgorithmPattern odd_even_transposition_pattern(std::size_t n) {
  assert(n >= 2);
  AlgorithmPattern p;
  p.name = "OddEvenSort(" + std::to_string(n) + ")";
  p.processors = n;
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<Message> round;
    for (std::size_t u = r % 2; u + 1 < n; u += 2) {
      round.push_back({static_cast<Vertex>(u), static_cast<Vertex>(u + 1)});
      round.push_back({static_cast<Vertex>(u + 1), static_cast<Vertex>(u)});
    }
    p.round_messages.push_back(std::move(round));
  }
  p.rounds = static_cast<std::uint32_t>(p.round_messages.size());
  p.traffic = aggregate(n, p.round_messages);
  return p;
}

std::vector<AlgorithmPattern> standard_patterns(std::size_t target) {
  const auto d = static_cast<unsigned>(ceil_log2(target));
  const auto side = static_cast<std::uint32_t>(
      ipow(2, static_cast<unsigned>(ceil_log2(target) / 2)));
  return {
      fft_pattern(d),
      bitonic_sort_pattern(d),
      transpose_pattern(side),
      parallel_prefix_pattern(target),
      stencil_pattern({side, side}, 4),
      all_to_all_pattern(std::min<std::size_t>(target, 256)),
      odd_even_transposition_pattern(std::min<std::size_t>(target, 256)),
  };
}

}  // namespace netemu
