#pragma once
// Algorithm communication patterns — the paper's announced extension (§3 /
// [15]): "Algorithms are treated as collections of communication patterns
// ... Lower bounds are obtained on the bandwidth of these circuits, yielding
// lower bounds on the bandwidth of any communication pattern induced by any
// efficient redundant simulation of the algorithm on a host."
//
// Each classic parallel algorithm is captured as its per-round message sets
// plus the aggregate traffic multigraph of one full pass; Lemma 8 then gives
// a routing-time (and hence slowdown) lower bound for executing it on any
// host machine.

#include <cstdint>
#include <string>
#include <vector>

#include "netemu/graph/multigraph.hpp"
#include "netemu/traffic/distribution.hpp"

namespace netemu {

struct AlgorithmPattern {
  std::string name;
  std::size_t processors = 0;
  std::uint32_t rounds = 0;       ///< rounds of one pass on the native machine
  /// Messages of each round (ordered src -> dst).
  std::vector<std::vector<Message>> round_messages;
  /// Aggregate traffic multigraph of one pass (multiplicity = how often a
  /// pair communicates across all rounds).
  Multigraph traffic;
};

/// FFT / butterfly exchange on 2^d processors: round i pairs u with
/// u xor 2^i.  One pass = d rounds; aggregate = the hypercube graph.
AlgorithmPattern fft_pattern(unsigned d);

/// Bitonic sort on 2^d processors: d stages, stage k has k substages
/// pairing on descending bit positions.  d(d+1)/2 rounds; dimension j is
/// used d-j times.
AlgorithmPattern bitonic_sort_pattern(unsigned d);

/// Matrix transpose on side x side processors (row-major): one round,
/// (r,c) -> (c,r).
AlgorithmPattern transpose_pattern(std::uint32_t side);

/// Parallel prefix (pointer-jumping form) on n processors: round i sends
/// u -> u + 2^i.  ceil(lg n) rounds.
AlgorithmPattern parallel_prefix_pattern(std::size_t n);

/// 5-point (2k+1-point) stencil sweep on a k-dim mesh of given sides:
/// `rounds` rounds of nearest-neighbor exchanges in every direction.
AlgorithmPattern stencil_pattern(const std::vector<std::uint32_t>& sides,
                                 std::uint32_t rounds);

/// All-to-all personalized exchange on n processors: one logical round in
/// which every ordered pair communicates (K_n traffic).
AlgorithmPattern all_to_all_pattern(std::size_t n);

/// Odd-even transposition sort on a line of n processors: n rounds of
/// alternating neighbor compare-exchanges.
AlgorithmPattern odd_even_transposition_pattern(std::size_t n);

/// All patterns at roughly `target` processors (for sweeps).
std::vector<AlgorithmPattern> standard_patterns(std::size_t target);

}  // namespace netemu
