#pragma once
// Process-level fault injection: run real child processes (netemu_serve
// backends) and kill them — hard — on a deterministic schedule.
//
// The I/O-level injector (injector.hpp) perturbs a live process from the
// inside; this module removes the process entirely.  SIGKILL is the point:
// no atexit, no signal handler, no cache save — the only state that
// survives is what the victim already fsync'd (its snapshot + WAL), which
// is exactly what the fleet's crash-recovery story has to prove.
//
// ManagedProcess is deliberately primitive — fork/exec, a pipe on stdout,
// kill, reap — because the harness needs to trust it more than the code
// under test.  Not thread-safe; drive each instance from one thread.

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

namespace netemu {

class ManagedProcess {
 public:
  ManagedProcess() = default;
  ~ManagedProcess();  ///< hard-kills and reaps if still running

  ManagedProcess(const ManagedProcess&) = delete;
  ManagedProcess& operator=(const ManagedProcess&) = delete;

  /// fork/exec `argv` (argv[0] = executable path) with stdout piped back to
  /// the parent.  stderr passes through to ours.  False + *error when the
  /// fork/exec plumbing fails; exec failure of the child itself surfaces as
  /// an immediate EOF on stdout plus exit_status() != 0.
  bool start(const std::vector<std::string>& argv, std::string* error);

  /// Still running?  (Reaps on the way: a just-exited child flips this to
  /// false and records its status.)
  bool running();

  pid_t pid() const { return pid_; }

  /// Exit status from waitpid once the child is reaped; -1 while running or
  /// never started.  Killed-by-signal encodes as 128+signo.
  int exit_status() const { return exit_status_; }

  /// Read one '\n'-terminated line from the child's stdout.  Blocks up to
  /// timeout_ms; false on timeout or EOF with no complete line.
  bool read_stdout_line(std::string& line, int timeout_ms);

  /// SIGKILL and reap.  The child gets no chance to flush or save anything.
  void kill_hard();

  /// SIGTERM, wait up to grace_ms for a clean exit, then SIGKILL.
  void terminate(int grace_ms = 2000);

 private:
  void close_stdout();
  bool reap(bool block);

  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  int exit_status_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

/// One scheduled process fault: hard-kill `backend` just before request
/// number `at_request` is issued, and restart it once `down_for_requests`
/// further requests have been issued.  Request counts — not wall time — keep
/// the schedule deterministic across machine speeds.
struct ProcessFault {
  std::uint64_t at_request = 0;
  std::size_t backend = 0;
  std::uint64_t down_for_requests = 0;
};

/// Deterministic schedule of `kills` kill/restart faults over a run of
/// `total_requests`, seeded: fault times are sorted and spaced away from the
/// very start/end of the run, victims are drawn uniformly.  Two runs with
/// the same arguments produce the same schedule.
std::vector<ProcessFault> process_fault_schedule(std::uint64_t seed,
                                                 std::size_t backends,
                                                 std::uint64_t total_requests,
                                                 int kills);

}  // namespace netemu
