#include "netemu/faultline/fault_plan.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "netemu/util/prng.hpp"

namespace netemu {

namespace {

void append_prob(std::string& out, const char* key, double p) {
  if (p <= 0.0) return;
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",%s=%g", key, p);
  out += buf;
}

void append_timed(std::string& out, const char* key, double p,
                  std::uint32_t ms) {
  if (p <= 0.0) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",%s=%g:%u", key, p, ms);
  out += buf;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size() && std::isfinite(out);
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

}  // namespace

bool FaultPlan::enabled() const {
  return drop_p > 0.0 || partial_p > 0.0 || slow_p > 0.0 ||
         disk_fail_p > 0.0 || torn_p > 0.0 || stall_p > 0.0;
}

std::string FaultPlan::spec() const {
  std::string out = "seed=" + std::to_string(seed);
  append_prob(out, "drop", drop_p);
  append_prob(out, "partial", partial_p);
  append_timed(out, "slow", slow_p, slow_ms);
  append_prob(out, "disk_fail", disk_fail_p);
  append_prob(out, "torn", torn_p);
  append_timed(out, "stall", stall_p, stall_ms);
  return out;
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec,
                                          std::string* error) {
  const auto fail = [error](const std::string& msg) -> std::optional<FaultPlan> {
    if (error) *error = msg;
    return std::nullopt;
  };

  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;

    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return fail("fault plan: expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);

    if (key == "seed") {
      if (!parse_u64(value, plan.seed)) {
        return fail("fault plan: bad seed '" + value + "'");
      }
      continue;
    }

    // Timed faults accept "p:ms"; everything else is a bare probability.
    std::uint32_t* ms_field = nullptr;
    double* p_field = nullptr;
    if (key == "drop") p_field = &plan.drop_p;
    else if (key == "partial") p_field = &plan.partial_p;
    else if (key == "disk_fail") p_field = &plan.disk_fail_p;
    else if (key == "torn") p_field = &plan.torn_p;
    else if (key == "slow") { p_field = &plan.slow_p; ms_field = &plan.slow_ms; }
    else if (key == "stall") { p_field = &plan.stall_p; ms_field = &plan.stall_ms; }
    else return fail("fault plan: unknown key '" + key + "'");

    const std::size_t colon = value.find(':');
    if (colon != std::string::npos) {
      if (!ms_field) {
        return fail("fault plan: '" + key + "' does not take a duration");
      }
      std::uint64_t ms = 0;
      if (!parse_u64(value.substr(colon + 1), ms) || ms > 60000) {
        return fail("fault plan: bad duration in '" + token + "'");
      }
      *ms_field = static_cast<std::uint32_t>(ms);
      value = value.substr(0, colon);
    }
    double p = 0.0;
    if (!parse_double(value, p) || p < 0.0 || p > 1.0) {
      return fail("fault plan: '" + key + "' needs a probability in [0, 1]");
    }
    *p_field = p;
  }
  if (error) error->clear();
  return plan;
}

FaultPlan FaultPlan::for_seed(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  // splitmix64 gives independent draws for nearby seeds; each fault gets a
  // moderate probability band so every kind fires during a short soak.
  std::uint64_t s = seed ^ 0xfa017113e5eedULL;
  const auto draw = [&s](double lo, double hi) {
    const double u = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
    return lo + u * (hi - lo);
  };
  plan.drop_p = draw(0.005, 0.03);
  plan.partial_p = draw(0.10, 0.40);
  plan.slow_p = draw(0.01, 0.05);
  plan.slow_ms = 1;
  plan.disk_fail_p = draw(0.10, 0.30);
  plan.torn_p = draw(0.20, 0.50);
  plan.stall_p = draw(0.02, 0.08);
  plan.stall_ms = static_cast<std::uint32_t>(1 + splitmix64(s) % 5);
  return plan;
}

}  // namespace netemu
