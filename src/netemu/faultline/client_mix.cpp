#include "netemu/faultline/client_mix.hpp"

namespace netemu {

const char* client_kind_name(ClientKind kind) {
  switch (kind) {
    case ClientKind::kWellBehaved:
      return "well_behaved";
    case ClientKind::kGreedy:
      return "greedy";
    case ClientKind::kMalformed:
      return "malformed";
  }
  return "unknown";
}

std::vector<ClientProfile> make_client_mix(const ClientMixSpec& spec) {
  std::vector<ClientProfile> mix;
  mix.reserve(spec.well_behaved + spec.greedy + spec.malformed);
  std::uint64_t sm = spec.seed;
  const auto add = [&](ClientKind kind, std::size_t count,
                       const char* prefix) {
    for (std::size_t i = 0; i < count; ++i) {
      ClientProfile p;
      p.kind = kind;
      p.name = prefix + std::to_string(i);
      p.seed = splitmix64(sm);
      p.think_ms = kind == ClientKind::kWellBehaved ? spec.think_ms : 0;
      p.honor_retry_after = kind == ClientKind::kWellBehaved;
      mix.push_back(std::move(p));
    }
  };
  add(ClientKind::kWellBehaved, spec.well_behaved, "well-");
  add(ClientKind::kGreedy, spec.greedy, "greedy-");
  add(ClientKind::kMalformed, spec.malformed, "mal-");
  return mix;
}

std::string malformed_request_line(Prng& prng) {
  switch (prng.below(8)) {
    case 0:
      return "this is not json";
    case 1:
      return "{\"op\":\"bandwidth\",";  // truncated object
    case 2:
      return "[1,2,3]";  // valid JSON, not an object
    case 3:
      return "{\"op\":\"no_such_op\"}";
    case 4:
      return "{\"op\":\"estimate\"}";  // missing required fields
    case 5:
      // Wrong-typed fields: n as string, client as number.
      return "{\"op\":\"bandwidth\",\"family\":\"mesh\",\"n\":\"big\","
             "\"client\":7}";
    case 6:
      return "{}";  // no op at all
    default: {
      // Oversized junk (but under the server's max_line): stresses the
      // framing path without tripping the too-long disconnect.
      std::string line = "{\"op\":\"";
      line.append(4096, 'x');
      line += "\"}";
      return line;
    }
  }
}

}  // namespace netemu
