#pragma once
// ClientMix: a deterministic population of client behaviour profiles for
// overload drills (bench/overload_soak and the guard tests).
//
// An overload storm is only meaningful when the traffic is heterogeneous:
// the guard's promise is that WELL-BEHAVED clients keep their fair share
// while greedy and broken ones are contained.  This module fabricates that
// population reproducibly from one seed:
//
//   kWellBehaved — paces itself with think time between requests and
//                  honours retry_after_ms backoff hints after a shed
//   kGreedy      — closed-loop but zero think time, ignores every backoff
//                  hint, and asks for the most expensive queries it can
//   kMalformed   — interleaves protocol garbage (non-JSON, wrong-typed
//                  fields, unknown ops, oversized junk) with real requests
//
// Like FaultPlan, everything flows from `seed` so a storm is reproducible
// from its spec alone.  The profiles are pure data; the soak harness owns
// the sockets and the clock.

#include <cstdint>
#include <string>
#include <vector>

#include "netemu/util/prng.hpp"

namespace netemu {

enum class ClientKind {
  kWellBehaved,
  kGreedy,
  kMalformed,
};

const char* client_kind_name(ClientKind kind);

/// One client's behaviour contract in the storm.
struct ClientProfile {
  ClientKind kind = ClientKind::kWellBehaved;
  /// Stable guard identity ("well-0", "greedy-1", ...).  Harnesses send it
  /// as the protocol "client" field so fairness accounting is visible even
  /// when every connection shares one source address.
  std::string name;
  /// Per-client PRNG stream seed (derived from the mix seed and index).
  std::uint64_t seed = 0;
  /// Pacing between requests; 0 for greedy clients.
  std::uint32_t think_ms = 0;
  /// Sleep the server's retry_after_ms hint after a shed?
  bool honor_retry_after = false;
};

struct ClientMixSpec {
  std::uint64_t seed = 1;
  std::size_t well_behaved = 4;
  std::size_t greedy = 1;
  std::size_t malformed = 1;
  /// Well-behaved think time between requests.
  std::uint32_t think_ms = 5;
};

/// The deterministic population: well-behaved first, then greedy, then
/// malformed, each with an independent PRNG stream.
std::vector<ClientProfile> make_client_mix(const ClientMixSpec& spec);

/// One line of protocol garbage drawn from a seeded menu: invalid JSON,
/// JSON non-objects, unknown ops, wrong-typed fields, and oversized junk.
/// Every variant must be answered with an error line — never a crash, a
/// hang, or a dropped connection with queued valid requests behind it.
std::string malformed_request_line(Prng& prng);

}  // namespace netemu
