#pragma once
// FaultPlan: the declarative half of netemu::faultline.
//
// A plan is a small set of probabilities and magnitudes describing which
// faults to inject where: connection drops and short reads/writes at the
// socket layer, slow I/O, disk-persist failures and torn (truncated) cache
// writes, and worker stalls inside the executor's compute path.  All
// randomness flows from `seed`, so a chaos run is reproducible from its
// plan spec alone (see docs/FAULTLINE.md).
//
// Spec syntax (round-trips through parse()/spec()):
//
//   seed=42,drop=0.02,partial=0.3,slow=0.1:2,disk_fail=0.2,torn=0.3,stall=0.05:20
//
// where `slow` and `stall` take `probability[:milliseconds]`.  Omitted keys
// keep their defaults (probability 0 = fault disabled).

#include <cstdint>
#include <optional>
#include <string>

namespace netemu {

struct FaultPlan {
  std::uint64_t seed = 1;

  // Socket layer (LineChannel).
  double drop_p = 0.0;     ///< per-I/O-op chance the connection "drops"
  double partial_p = 0.0;  ///< per-I/O-op chance of a short read/write
  double slow_p = 0.0;     ///< per-I/O-op chance of sleeping slow_ms first
  std::uint32_t slow_ms = 2;

  // Disk layer (ResultCache persistence).
  double disk_fail_p = 0.0;  ///< chance a save() fails cleanly (no file change)
  double torn_p = 0.0;       ///< chance a save() leaves a truncated file behind

  // Compute layer (QueryExecutor workers).
  double stall_p = 0.0;  ///< per-compute chance of sleeping stall_ms first
  std::uint32_t stall_ms = 20;

  /// True when any fault has nonzero probability.
  bool enabled() const;

  /// Canonical spec string (only non-default fields, seed always included).
  std::string spec() const;

  /// Parse a spec string.  Returns nullopt and sets *error on malformed
  /// keys, probabilities outside [0, 1], or bad numbers.
  static std::optional<FaultPlan> parse(const std::string& spec,
                                        std::string* error = nullptr);

  /// A moderate randomized plan derived deterministically from `seed` —
  /// what the chaos soak sweeps.  Every fault kind is enabled; sleeps are
  /// kept to a few milliseconds so a soak stays fast.
  static FaultPlan for_seed(std::uint64_t seed);
};

}  // namespace netemu
