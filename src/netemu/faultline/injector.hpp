#pragma once
// FaultInjector: the imperative half of netemu::faultline.
//
// One injector instance is shared by every hook point in a service stack
// (client channel, server channels, result cache, executor workers).  Each
// hook asks the injector whether to fault *this* operation; the injector
// draws from a single seeded PRNG stream and counts what it injected, so a
// chaos test can assert both that faults actually fired and that the stack
// absorbed them.
//
// Thread-safety: all hooks take an internal mutex (hook sites are syscalls
// or disk writes, so the lock is never the bottleneck).  Determinism is
// per-draw: the same seed produces the same fault sequence for a fixed
// order of hook calls; across threads the interleaving — and therefore
// which operation receives which fault — may vary, which is exactly the
// nondeterminism a chaos sweep wants while staying reproducible in the
// single-threaded unit tests.

#include <cstdint>
#include <mutex>

#include "netemu/faultline/fault_plan.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  enum class IoFault {
    kNone,  ///< proceed (len possibly clamped for a short transfer)
    kDrop,  ///< behave as if the connection dropped
  };

  /// Socket hook: called before each read/write of up to `len` bytes.
  /// May sleep (slow I/O), clamp `len` (short transfer), or request a drop.
  IoFault on_io(std::size_t& len);

  enum class DiskFault {
    kNone,  ///< persist normally
    kFail,  ///< fail the save cleanly (no file change)
    kTorn,  ///< write only `torn_fraction` of the bytes, then "crash"
  };

  /// Disk hook: called once per ResultCache::save().  On kTorn,
  /// `torn_fraction` is set to the fraction of bytes to actually write.
  DiskFault on_disk_write(double& torn_fraction);

  /// Compute hook: called at the start of each worker computation; may
  /// sleep to simulate a stalled worker.
  void on_compute();

  struct Counts {
    std::uint64_t drops = 0;
    std::uint64_t shorts = 0;
    std::uint64_t slows = 0;
    std::uint64_t disk_fails = 0;
    std::uint64_t torn_writes = 0;
    std::uint64_t stalls = 0;
    std::uint64_t total() const {
      return drops + shorts + slows + disk_fails + torn_writes + stalls;
    }
  };
  Counts counts() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  const FaultPlan plan_;
  mutable std::mutex mutex_;
  Prng rng_;
  Counts counts_;
};

}  // namespace netemu
