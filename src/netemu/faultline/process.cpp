#include "netemu/faultline/process.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "netemu/util/prng.hpp"

namespace netemu {

ManagedProcess::~ManagedProcess() {
  if (pid_ > 0 && exit_status_ < 0) kill_hard();
  close_stdout();
}

void ManagedProcess::close_stdout() {
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
}

bool ManagedProcess::start(const std::vector<std::string>& argv,
                           std::string* error) {
  if (argv.empty()) {
    if (error) *error = "empty argv";
    return false;
  }
  if (pid_ > 0 && exit_status_ < 0) {
    if (error) *error = "already running (pid " + std::to_string(pid_) + ")";
    return false;
  }

  int fds[2];
  if (::pipe(fds) != 0) {
    if (error) *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (error) *error = std::string("fork: ") + std::strerror(errno);
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }

  if (pid == 0) {
    // Child: stdout -> pipe, then exec.  Only async-signal-safe calls here.
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    _exit(127);  // exec failed; parent sees EOF on the pipe + status 127
  }

  ::close(fds[1]);
  pid_ = pid;
  stdout_fd_ = fds[0];
  exit_status_ = -1;
  buffer_.clear();
  return true;
}

bool ManagedProcess::reap(bool block) {
  if (pid_ <= 0 || exit_status_ >= 0) return exit_status_ >= 0;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, block ? 0 : WNOHANG);
  if (r != pid_) return false;
  if (WIFEXITED(status)) {
    exit_status_ = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    exit_status_ = 128 + WTERMSIG(status);
  } else {
    exit_status_ = 255;
  }
  return true;
}

bool ManagedProcess::running() {
  if (pid_ <= 0) return false;
  return !reap(/*block=*/false);
}

bool ManagedProcess::read_stdout_line(std::string& line, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (stdout_fd_ < 0) return false;

    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return false;
    struct pollfd pfd = {stdout_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) return false;  // timeout

    char chunk[4096];
    const ssize_t n = ::read(stdout_fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      close_stdout();  // EOF (child exited or closed stdout)
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void ManagedProcess::kill_hard() {
  if (pid_ <= 0 || exit_status_ >= 0) return;
  ::kill(pid_, SIGKILL);
  reap(/*block=*/true);
  close_stdout();
}

void ManagedProcess::terminate(int grace_ms) {
  if (pid_ <= 0 || exit_status_ >= 0) return;
  ::kill(pid_, SIGTERM);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(grace_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (reap(/*block=*/false)) {
      close_stdout();
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  kill_hard();
}

std::vector<ProcessFault> process_fault_schedule(std::uint64_t seed,
                                                 std::size_t backends,
                                                 std::uint64_t total_requests,
                                                 int kills) {
  std::vector<ProcessFault> out;
  if (backends == 0 || total_requests < 4 || kills <= 0) return out;
  std::uint64_t mix = seed ^ 0x70726f63657373ULL;  // "process"
  Prng prng(splitmix64(mix));

  // Fault times land in the middle [10%, 90%] of the run: a kill during the
  // warmup or after the last request exercises nothing.
  const std::uint64_t lo = std::max<std::uint64_t>(1, total_requests / 10);
  const std::uint64_t hi = total_requests - total_requests / 10;
  for (int i = 0; i < kills; ++i) {
    ProcessFault f;
    f.at_request = lo + prng.below(std::max<std::uint64_t>(1, hi - lo));
    f.backend = static_cast<std::size_t>(prng.below(backends));
    // Down long enough for the breaker to open and traffic to fail over,
    // short enough that the restart also happens mid-run.
    f.down_for_requests =
        2 + prng.below(std::max<std::uint64_t>(2, total_requests / 8));
    out.push_back(f);
  }
  std::sort(out.begin(), out.end(),
            [](const ProcessFault& a, const ProcessFault& b) {
              return a.at_request < b.at_request;
            });
  return out;
}

}  // namespace netemu
