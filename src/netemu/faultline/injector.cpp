#include "netemu/faultline/injector.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace netemu {

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {}

FaultInjector::IoFault FaultInjector::on_io(std::size_t& len) {
  std::uint32_t sleep_ms = 0;
  IoFault fault = IoFault::kNone;
  {
    std::lock_guard lock(mutex_);
    if (plan_.drop_p > 0.0 && rng_.chance(plan_.drop_p)) {
      ++counts_.drops;
      return IoFault::kDrop;
    }
    if (plan_.slow_p > 0.0 && rng_.chance(plan_.slow_p)) {
      ++counts_.slows;
      sleep_ms = plan_.slow_ms;
    }
    if (plan_.partial_p > 0.0 && len > 1 && rng_.chance(plan_.partial_p)) {
      ++counts_.shorts;
      // Clamp to a 1..min(len-1, 16) byte transfer: small enough to force
      // the caller's short-I/O loop through many iterations per line.
      const std::uint64_t cap = std::min<std::uint64_t>(len - 1, 16);
      len = static_cast<std::size_t>(1 + rng_.below(cap));
    }
  }
  // Sleep outside the lock so a slow op never serializes other hook sites.
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return fault;
}

FaultInjector::DiskFault FaultInjector::on_disk_write(double& torn_fraction) {
  std::lock_guard lock(mutex_);
  if (plan_.disk_fail_p > 0.0 && rng_.chance(plan_.disk_fail_p)) {
    ++counts_.disk_fails;
    return DiskFault::kFail;
  }
  if (plan_.torn_p > 0.0 && rng_.chance(plan_.torn_p)) {
    ++counts_.torn_writes;
    torn_fraction = 0.05 + 0.9 * rng_.uniform();
    return DiskFault::kTorn;
  }
  return DiskFault::kNone;
}

void FaultInjector::on_compute() {
  bool stall = false;
  {
    std::lock_guard lock(mutex_);
    if (plan_.stall_p > 0.0 && rng_.chance(plan_.stall_p)) {
      ++counts_.stalls;
      stall = true;
    }
  }
  if (stall) {
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.stall_ms));
  }
}

FaultInjector::Counts FaultInjector::counts() const {
  std::lock_guard lock(mutex_);
  return counts_;
}

}  // namespace netemu
