// Ablation: the redundancy knob of the Koch et al. emulation model.
// Replicating the guest r times shortens message distances (regions are
// smaller) at the price of r-fold work — but it can NEVER beat the
// bandwidth lower bound β(G)/β(H), which is exactly why the paper states
// its bound in bandwidth rather than distance terms.

#include "bench_common.hpp"
#include "netemu/emulation/bounds.hpp"
#include "netemu/emulation/redundant.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header("Ablation: redundant emulation (replication factor r)");
  Prng rng(47);
  Verdict verdict;

  struct Case {
    Family gf;
    unsigned gk;
    std::size_t gn;
    Family hf;
    unsigned hk;
    std::size_t hn;
  };
  const Case cases[] = {
      // Distance-limited pair: tree guest on a big mesh host.
      {Family::kTree, 1, 255, Family::kMesh, 2, 256},
      // Bandwidth-limited pair: de Bruijn guest on a small mesh host.
      {Family::kDeBruijn, 1, 1024, Family::kMesh, 2, 64},
  };

  for (const Case& c : cases) {
    const Machine guest = make_machine(c.gf, c.gn, c.gk, rng);
    const Machine host = make_machine(c.hf, c.hn, c.hk, rng);
    const SlowdownBounds b = slowdown_bounds(
        c.gf, c.gk, static_cast<double>(guest.graph.num_vertices()), c.hf,
        c.hk, static_cast<double>(host.graph.num_vertices()));
    std::cout << guest.name << " on " << host.name
              << "   (bandwidth LB = " << Table::num(b.bandwidth, 1)
              << ", load LB = " << Table::num(b.load, 1) << ")\n\n";

    Table t({"r", "slowdown", "inefficiency", "comm fraction", "load"});
    std::vector<double> slowdowns;
    for (std::uint32_t r : {1u, 2u, 4u}) {
      RedundantOptions opt;
      opt.replication = r;
      opt.guest_steps = 2;
      const RedundantResult res = emulate_redundant(guest, host, rng, opt);
      slowdowns.push_back(res.slowdown);
      t.add_row({Table::integer(r), Table::num(res.slowdown, 1),
                 Table::num(res.inefficiency, 2),
                 Table::num(res.comm_fraction, 2),
                 Table::integer(res.max_load)});
      // Every replication factor still respects the bandwidth Ω-bound
      // (4x constant slack).
      verdict.check(res.slowdown * 4.0 >= b.bandwidth,
                    guest.name + " r=" + std::to_string(r) +
                        " beats the bandwidth bound?!");
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Reading: on the distance-limited pair replication helps "
               "communication (regions\nshrink); on the bandwidth-limited "
               "pair it cannot — the wires across the host's\nbisection are "
               "shared by all copies.  Bandwidth, not distance, is the "
               "robust\nobstruction, which is the paper's thesis.\n";
  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
