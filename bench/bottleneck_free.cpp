// Verifies the paper's Definition-1 hypothesis, asserted there "without
// proof": the standard machine families are bottleneck-free — the delivery
// rate under any quasi-symmetric distribution (random Ω(n)-node subsets,
// Ω(1) pair densities) is at most a constant factor above β.

#include "bench_common.hpp"
#include "netemu/bandwidth/bottleneck.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header("Bottleneck-freeness of the standard families (Definition 1)");
  Prng rng(41);
  Verdict verdict;

  Table t({"machine", "n", "beta-hat (symmetric)", "worst quasi/symmetric",
           "probes", "verdict"});
  for (Family f : all_families()) {
    const unsigned k = family_is_dimensional(f) ? 2 : 1;
    const Machine m = make_machine(f, 256, k, rng);
    BottleneckOptions opt;
    opt.throughput.trials = 1;
    const BottleneckReport rep = measure_bottleneck_freeness(m, rng, opt);
    // Bottleneck-free: the constant the theorem hides.  Small subsets can
    // beat the global rate slightly on expanders (fewer collisions), so the
    // acceptance constant is 3.
    const bool ok = rep.worst_ratio > 0.0 && rep.worst_ratio < 3.0;
    verdict.check(ok, m.name + " worst ratio " +
                          Table::num(rep.worst_ratio, 2));
    t.add_row({m.name, Table::integer((long long)m.graph.num_vertices()),
               Table::num(rep.symmetric_rate, 2),
               Table::num(rep.worst_ratio, 2),
               Table::integer((long long)rep.probes.size()),
               ok ? "PASS" : "CHECK"});
  }
  t.print(std::cout);
  std::cout << "\nInterpretation: no family hides a sub-network faster than "
               "its global bandwidth,\nso hypothesis (2) of the Efficient "
               "Emulation Theorem holds for every machine used\nin Tables "
               "1-3.\n";
  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
