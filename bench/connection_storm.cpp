// connection_storm: the acceptance bench for the sharded epoll I/O plane
// (docs/SERVICE.md "I/O plane", docs/PERF.md).  Proves the epoll plane
// holds tens of thousands of mostly-idle connections while serving a hot
// cache-hit workload — the regime where the legacy thread-per-connection
// plane burns a kernel thread (two VMAs: stack + guard page) per idle
// socket and hits the default-kernel `vm.max_map_count` ceiling of 65530
// at roughly 32k connections — without regressing small-fleet latency.
//
// Per plane (--mode epoll|blocking|both):
//
//   latency — on a fresh, otherwise idle server, 64 closed-loop
//             connections time every request -> p50/p99 microseconds
//             (best of two reps; run first so the storm's aftermath
//             cannot pollute the small-fleet numbers).
//   storm   — open N connections (--connections, default 40000; raises
//             RLIMIT_NOFILE and rotates client source addresses across
//             127.0.0.1-4 to dodge the ~28k ephemeral-port ceiling per
//             source ip), verify each answers a ping, and HOLD them open.
//   hot     — W workers churn cache-hit bursts (fresh connection, one
//             pipelined burst, disconnect — the shape netemu_query
//             produces) for a fixed wall-clock box (--hot-seconds) while
//             the storm stays parked.  qps counts only requests that were
//             answered inside the box; a plane refusing connections at
//             its scaling ceiling earns a collapse, not a fast failure.
//
// Gates (full mode only; --smoke records numbers without gating):
//   * the epoll plane sustains every storm connection
//   * the epoll hot phase is failure-free
//   * epoll hot qps >= 3x the blocking plane's under the storm
//   * epoll p99 at 64 connections <= 1.10x the blocking plane's
//
// The blocking plane is expected to fall over under the full storm: every
// parked connection pins a live thread, every churned connection leaves a
// dead-but-unjoined thread whose stack stays mapped until stop(), and the
// two together march the process into the kernel's map ceiling, after
// which it refuses all new connections.  That collapse is the measured
// finding, not a bench failure — only the epoll plane must stay clean.
//
// Writes BENCH_service.json (schema netemu-bench-service/1) so every PR has
// a tracked serving-plane baseline next to BENCH_sim.json.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "netemu/scope/metrics.hpp"
#include "netemu/service/client.hpp"
#include "netemu/service/protocol.hpp"
#include "netemu/service/server.hpp"
#include "netemu/util/cli.hpp"
#include "netemu/util/json.hpp"
#include "netemu/util/table.hpp"

using namespace netemu;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Minimal raw connection: the storm holds tens of thousands of these, so
/// they must cost two buffers, not a Client with its retry machinery.
class RawConn {
 public:
  /// Connect to 127.0.0.1:port.  `src_slot` rotates the client source
  /// address across 127.0.0.1-4: each source ip has its own ~28k ephemeral
  /// port space, so a 40k-connection storm to one destination needs more
  /// than one.  Loopback owns all of 127/8, no configuration required.
  bool connect_to(std::uint16_t port, std::uint32_t src_slot = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in src{};
    src.sin_family = AF_INET;
    src.sin_addr.s_addr = htonl(0x7F000001u + (src_slot % 4u));
    src.sin_port = 0;
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&src), sizeof(src)) < 0) {
      close();
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // RST on close instead of TIME_WAIT: the bench opens tens of thousands
    // of loopback connections and would exhaust the ephemeral port range
    // long before the 60 s TIME_WAIT timers expire.  Every response is
    // fully read before close, so no data is lost to the reset.
    const linger rst{1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &rst, sizeof(rst));
    return true;
  }

  ~RawConn() { close(); }
  RawConn() = default;
  RawConn(RawConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  RawConn& operator=(RawConn&&) = delete;
  RawConn(const RawConn&) = delete;

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  /// Send `payload` (pre-framed request lines) in one burst and read until
  /// `expect_lines` responses arrived.  The pipelined shape is the point:
  /// the epoll plane answers a whole burst with one coalesced flush where
  /// the blocking plane pays a write syscall per response.  False on any
  /// transport failure (including the server refusing the connection).
  bool burst(const std::string& payload, std::size_t expect_lines,
             std::string* responses) {
    std::size_t off = 0;
    while (off < payload.size()) {
      const ssize_t n = ::send(fd_, payload.data() + off,
                               payload.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    responses->clear();
    std::size_t lines = 0;
    char chunk[65536];
    while (lines < expect_lines) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      for (ssize_t i = 0; i < n; ++i) {
        if (chunk[i] == '\n') ++lines;
      }
      responses->append(chunk, static_cast<std::size_t>(n));
    }
    return true;
  }

  /// Single request/response round trip (a burst of one).
  bool roundtrip(const std::string& line, std::string* response = nullptr) {
    std::string buffer;
    if (!burst(line + "\n", 1, &buffer)) return false;
    if (response) *response = buffer.substr(0, buffer.find('\n'));
    return true;
  }

 private:
  int fd_ = -1;
};

/// Raise RLIMIT_NOFILE toward `need` (server + client fds live in this one
/// process, so a storm of N costs ~2N).  Raises the hard limit too when the
/// process is privileged (the kernel allows up to fs/nr_open); otherwise
/// settles for the hard cap.  Returns the usable soft limit.
rlim_t raise_nofile(rlim_t need) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  if (rl.rlim_cur >= need) return rl.rlim_cur;
  rlimit want = rl;
  want.rlim_cur = need;
  want.rlim_max = std::max(rl.rlim_max, need);
  if (::setrlimit(RLIMIT_NOFILE, &want) != 0) {
    want.rlim_max = rl.rlim_max;
    want.rlim_cur = std::min(need, rl.rlim_max);
    ::setrlimit(RLIMIT_NOFILE, &want);
  }
  ::getrlimit(RLIMIT_NOFILE, &rl);
  return rl.rlim_cur;
}

std::vector<std::string> warm_workload() {
  std::vector<std::string> lines;
  for (int i = 0; i < 8; ++i) {
    Json q = Json::object();
    q["op"] = "estimate";
    q["family"] = "Butterfly";
    q["n"] = 64 + i;
    lines.push_back(q.dump());
  }
  return lines;
}

struct PlaneResult {
  std::size_t storm_target = 0;
  std::size_t storm_open = 0;   ///< connections that answered a ping
  double storm_s = 0.0;         ///< open+verify wall time
  double hot_qps = 0.0;         ///< successfully answered requests / wall
  std::uint64_t hot_ok = 0;
  std::uint64_t hot_failures = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

PlaneResult run_plane(bool blocking_plane, std::size_t storm_conns,
                      double hot_seconds, std::size_t hot_workers,
                      std::size_t latency_conns,
                      std::uint64_t latency_requests) {
  PlaneResult result;
  result.storm_target = storm_conns;

  // A cheap echo compute: the bench measures the serving stack, not the
  // planner; real query math would drown the I/O plane in compute noise.
  QueryExecutor::Options exec_options;
  exec_options.compute = [](const Query& q, const CancelToken&) {
    Json doc = Json::object();
    doc["n"] = q.n;
    return doc;
  };
  QueryExecutor executor(std::move(exec_options));

  Server::Options server_options;
  server_options.port = 0;
  server_options.blocking_plane = blocking_plane;
  Server server(executor, server_options);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "connection_storm: " << error << "\n";
    return result;
  }

  // Warm the cache so everything after is pure cache hits (served inline
  // on the reactor by the epoll plane's fast path).
  const std::vector<std::string> workload = warm_workload();
  {
    Client warm;
    std::string response;
    if (warm.connect(server.port())) {
      for (const auto& line : workload) warm.request_raw(line, response);
    }
  }

  // --- latency: closed-loop probes on the fresh, idle server.  Runs
  // before the storm so the small-fleet percentiles measure the plane,
  // not the wreckage the storm leaves behind (the blocking plane keeps
  // dead connection-thread stacks mapped until stop()).  Best of two
  // reps: a single percentile sample on a shared box gates on noise. ---
  for (int rep = 0; rep < 2; ++rep) {
    std::vector<std::thread> threads;
    std::vector<std::vector<double>> latencies(latency_conns);
    for (std::size_t c = 0; c < latency_conns; ++c) {
      threads.emplace_back([&, c] {
        Client client;
        if (!client.connect(server.port())) return;
        latencies[c].reserve(latency_requests);
        std::string response;
        for (std::uint64_t i = 0; i < latency_requests; ++i) {
          const std::string& line = workload[(c + i) % workload.size()];
          const auto t0 = Clock::now();
          if (!client.request_raw(line, response)) return;
          latencies[c].push_back(seconds_since(t0) * 1e6);
        }
      });
    }
    for (auto& t : threads) t.join();
    std::vector<double> all;
    for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
    if (all.empty()) continue;
    const double p99 = scope::exact_quantile(all, 0.99);
    if (result.p99_us == 0.0 || p99 < result.p99_us) {
      result.p50_us = scope::exact_quantile(all, 0.50);
      result.p99_us = p99;
    }
  }

  // --- storm: open and verify N connections, then hold them. ---
  std::vector<RawConn> parked;
  parked.reserve(storm_conns);
  const auto storm_start = Clock::now();
  const std::string ping = R"({"op":"ping"})";
  for (std::size_t i = 0; i < storm_conns; ++i) {
    RawConn conn;
    if (!conn.connect_to(server.port(), static_cast<std::uint32_t>(i)))
      continue;
    std::string response;
    // The ping proves the server actually serves this connection: the
    // blocking plane accepts into its backlog and then refuses once it can
    // no longer spawn the connection thread (at the kernel's default
    // vm.max_map_count, around 32k threads).
    if (!conn.roundtrip(ping, &response)) continue;
    if (response.find("\"pong\":true") == std::string::npos) continue;
    parked.push_back(std::move(conn));
  }
  result.storm_open = parked.size();
  result.storm_s = seconds_since(storm_start);

  // --- hot: churning cache-hit bursts while the storm stays parked. ---
  {
    // The active-traffic shape the repo's own clients produce: a fresh
    // connection, one pipelined burst of requests, disconnect (netemu_query
    // opens a connection per CLI invocation).  Under churn the planes'
    // architectures diverge hardest — the blocking plane pays a thread
    // spawn per arriving connection and leaks the dead thread's stack
    // mappings afterwards (it joins only at stop()), so the parked storm
    // plus sustained churn march it into the kernel map ceiling mid-box;
    // the epoll plane pays an O(1) shard registration and reclaims the
    // slot on close — all while the storm holds its fds open.
    constexpr std::size_t kBurst = 4;
    // A fixed wall-clock box, two reps, best kept: sustained goodput over
    // a box is what a collapse shows up in, and a single timing on a
    // shared machine is too noisy to gate a plane-vs-plane ratio on (same
    // best-of discipline as micro_sim).
    for (int rep = 0; rep < 2; ++rep) {
      std::vector<std::thread> threads;
      std::vector<std::uint64_t> failures(hot_workers, 0);
      std::vector<std::uint64_t> answered(hot_workers, 0);
      const auto hot_start = Clock::now();
      const auto deadline =
          hot_start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(hot_seconds));
      const auto worker = [&](std::size_t w) {
        std::string payload;
        for (std::size_t i = 0; i < kBurst; ++i) {
          payload += workload[(w + i) % workload.size()];
          payload += '\n';
        }
        std::string responses;
        while (Clock::now() < deadline) {
          RawConn conn;
          if (conn.connect_to(server.port()) &&
              conn.burst(payload, kBurst, &responses) &&
              responses.find("\"ok\":false") == std::string::npos) {
            answered[w] += kBurst;
          } else {
            failures[w] += kBurst;
          }
        }
      };
      for (std::size_t w = 0; w < hot_workers; ++w) {
        // The blocking plane under test can exhaust the whole process's
        // thread headroom (its dead connection threads keep their stacks
        // mapped); the bench's own workers must survive that, so a failed
        // spawn falls back to measuring from this thread alone.
        try {
          threads.emplace_back(worker, w);
        } catch (const std::system_error&) {
          break;
        }
      }
      if (threads.empty()) worker(0);
      for (auto& t : threads) t.join();
      const double hot_s = seconds_since(hot_start);
      std::uint64_t total_failed = 0, total_answered = 0;
      for (std::size_t w = 0; w < hot_workers; ++w) {
        total_failed += failures[w];
        total_answered += answered[w];
      }
      result.hot_failures += total_failed;
      result.hot_ok += total_answered;
      // Only answered requests count, over the whole box: a plane refusing
      // connections at its ceiling must not convert fast failures into
      // apparent throughput.
      const double qps = hot_s > 0.0
                             ? static_cast<double>(total_answered) / hot_s
                             : 0.0;
      result.hot_qps = std::max(result.hot_qps, qps);
    }
  }

  parked.clear();
  server.stop();
  return result;
}

Json plane_json(const PlaneResult& r) {
  Json doc = Json::object();
  doc["storm_target"] = static_cast<double>(r.storm_target);
  doc["storm_open"] = static_cast<double>(r.storm_open);
  doc["storm_s"] = r.storm_s;
  doc["hot_qps"] = r.hot_qps;
  doc["hot_ok"] = static_cast<double>(r.hot_ok);
  doc["hot_failures"] = static_cast<double>(r.hot_failures);
  doc["p50_us"] = r.p50_us;
  doc["p99_us"] = r.p99_us;
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");
  const std::string mode = cli.get("mode", "both");
  const bool run_epoll = mode == "both" || mode == "epoll";
  const bool run_blocking = mode == "both" || mode == "blocking";
  if (!run_epoll && !run_blocking) {
    std::cerr << "connection_storm: --mode must be epoll|blocking|both\n";
    return 2;
  }

  // The full-mode default of 40000 sits deliberately above the blocking
  // plane's structural ceiling (~32k threads at the default-kernel
  // vm.max_map_count of 65530) and below the epoll plane's only real
  // limit, file descriptors.
  auto storm_conns = static_cast<std::size_t>(
      cli.get_int("connections", smoke ? 256 : 40000));
  const double hot_seconds = static_cast<double>(
      cli.get_int("hot-seconds", smoke ? 1 : 5));
  const auto hot_workers =
      static_cast<std::size_t>(cli.get_int("workers", 8));
  const std::size_t latency_conns = 64;
  const auto latency_requests =
      static_cast<std::uint64_t>(smoke ? 20 : 100);

  // Two fds per storm connection (client + server side share the process).
  const std::size_t requested_conns = storm_conns;
  const rlim_t limit =
      raise_nofile(static_cast<rlim_t>(2 * storm_conns + 512));
  bool fd_capped = false;
  if (limit < static_cast<rlim_t>(2 * storm_conns + 512)) {
    const auto fit = static_cast<std::size_t>((limit - 512) / 2);
    std::cerr << "connection_storm: RLIMIT_NOFILE " << limit << " caps the "
              << "storm at " << fit << " connections (wanted " << storm_conns
              << ")\n";
    storm_conns = fit;
    fd_capped = true;
  }

  Json doc = Json::object();
  doc["schema"] = "netemu-bench-service/1";
  doc["smoke"] = smoke;
  doc["connections"] = static_cast<double>(storm_conns);
  // Honest scaling report: when the fd limit shrank the storm, say so in
  // the result document — a reader comparing runs must not mistake a capped
  // 12k-connection storm for the requested 40k one.
  doc["fd_capped"] = fd_capped;
  if (fd_capped) {
    doc["connections_requested"] = static_cast<double>(requested_conns);
    doc["rlimit_nofile"] = static_cast<double>(limit);
  }
  doc["hot_seconds"] = hot_seconds;

  PlaneResult epoll, blocking;
  if (run_epoll) {
    std::cerr << "connection_storm: epoll plane...\n";
    epoll = run_plane(false, storm_conns, hot_seconds, hot_workers,
                      latency_conns, latency_requests);
    doc["epoll"] = plane_json(epoll);
  }
  if (run_blocking) {
    std::cerr << "connection_storm: blocking plane...\n";
    blocking = run_plane(true, storm_conns, hot_seconds, hot_workers,
                         latency_conns, latency_requests);
    doc["blocking"] = plane_json(blocking);
  }

  Table t({"plane", "storm open", "storm s", "hot qps", "fail", "p50 us",
           "p99 us"});
  const auto add_row = [&t](const char* name, const PlaneResult& r) {
    t.add_row({name,
               Table::integer(static_cast<std::int64_t>(r.storm_open)) + "/" +
                   Table::integer(static_cast<std::int64_t>(r.storm_target)),
               Table::num(r.storm_s, 2), Table::num(r.hot_qps, 0),
               Table::integer(static_cast<std::int64_t>(r.hot_failures)),
               Table::num(r.p50_us, 1), Table::num(r.p99_us, 1)});
  };
  if (run_epoll) add_row("epoll", epoll);
  if (run_blocking) add_row("blocking", blocking);
  t.print(std::cout);

  const std::string out_path = cli.get("out", "BENCH_service.json");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "connection_storm: cannot write " << out_path << "\n";
    return 2;
  }
  out << doc.dump() << "\n";
  std::cerr << "connection_storm: wrote " << out_path << "\n";

  bench::Verdict verdict;
  if (run_epoll) {
    verdict.check(epoll.storm_open == storm_conns,
                  "epoll plane sustained every storm connection");
    verdict.check(epoll.hot_failures == 0, "epoll hot phase fully ok");
  }
  if (!smoke && run_epoll && run_blocking) {
    // The headline gates (docs/PERF.md): under a storm past the thread
    // ceiling the epoll plane must clearly beat thread-per-connection
    // without giving back small-fleet latency.  The blocking plane is
    // allowed — expected — to refuse connections and fail bursts here;
    // that collapse is the measurement.  Smoke mode records numbers but
    // does not gate: CI smoke boxes are too noisy for ratio gates.
    verdict.check(epoll.hot_qps >= 3.0 * blocking.hot_qps,
                  "epoll hot qps >= 3x blocking under storm");
    verdict.check(epoll.p99_us <= 1.10 * blocking.p99_us,
                  "epoll p99 at 64 connections <= 1.10x blocking");
  }
  return verdict.exit_code();
}
