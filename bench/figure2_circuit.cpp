// Reproduces Figure 2: the cone / S-set / Q-set construction inside the
// Lemma 9 proof, realized on concrete guests, with every counting claim of
// the lemma audited:
//   * γ ∈ K_{Θ(nt),1}           (vertices ~ nt, pair multiplicity 1)
//   * Ω(n²) cone paths per S-level
//   * embedding congestion O(max(n·t², t·C(G,K_n)))
//   * β(Φ,γ) = Ω(t·β(G))         (bandwidth preservation)
// followed by the Lemma 11 collapse audit (β survives super-vertex
// collapse onto |H| processors).

#include "bench_common.hpp"
#include "netemu/circuit/collapse_audit.hpp"
#include "netemu/circuit/lemma9.hpp"
#include "netemu/bandwidth/empirical.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header("Figure 2: Lemma 9 cones / S-sets / Q-sets, audited");
  Prng rng(17);
  Verdict verdict;

  Table t({"guest", "n", "t", "w", "|V(gamma)|/nt", "E(gamma)/(nt)^2",
           "cones/lvl/n^2", "congestion ratio", "beta(Phi,gamma)/t*beta(G)",
           "verdict"});

  const std::pair<Family, unsigned> guests[] = {
      {Family::kMesh, 2},      {Family::kDeBruijn, 1},
      {Family::kXTree, 1},     {Family::kCCC, 1},
      {Family::kShuffleExchange, 1},
  };
  for (const auto& [family, k] : guests) {
    const Machine g = make_machine(family, 144, k, rng);
    const Lemma9Construction c(g.graph, {}, rng);
    const Lemma9Audit a = lemma9_audit(c);
    const bool ok = a.max_pair_multiplicity == 1 &&
                    a.vertices_per_nt > 0.3 && a.vertices_per_nt < 2.5 &&
                    a.cone_paths_per_level_n2 > 0.2 &&
                    a.congestion_ratio < 4.0 && a.preservation_ratio > 0.05;
    verdict.check(ok, std::string(family_name(family)) + " lemma 9 audit");
    t.add_row({g.name, Table::integer(a.n), Table::integer(a.t),
               Table::integer(a.w), Table::num(a.vertices_per_nt, 2),
               Table::num(a.edges_per_n2t2, 3),
               Table::num(a.cone_paths_per_level_n2, 2),
               Table::num(a.congestion_ratio, 2),
               Table::num(a.preservation_ratio, 3), ok ? "PASS" : "CHECK"});
  }
  t.print(std::cout);

  // --- Lemma 11: collapse onto |H| super-vertices ---------------------------
  std::cout << "\nLemma 11 collapse audit (Mesh2(12x12) circuit):\n\n";
  const Machine g = make_mesh({12, 12});
  const Lemma9Construction c(g.graph, {}, rng);
  Table t2({"parts |H|", "load k", "survive frac", "pair mult / k^2",
            "beta(M,xi)/beta(Phi,gamma)", "verdict"});
  for (std::uint32_t parts : {8u, 16u, 32u}) {
    const CollapseAudit a =
        collapse_audit(c, parts, PartitionStrategy::kBlock, rng);
    const bool ok = a.surviving_fraction > 0.7 && a.pair_mult_over_k2 < 4.0 &&
                    a.preservation_ratio > 0.25;
    verdict.check(ok, "lemma 11 at parts=" + std::to_string(parts));
    t2.add_row({Table::integer(parts), Table::integer(a.load_k),
                Table::num(a.surviving_fraction, 3),
                Table::num(a.pair_mult_over_k2, 3),
                Table::num(a.preservation_ratio, 3), ok ? "PASS" : "CHECK"});
  }
  t2.print(std::cout);

  // --- Lemma 12, end to end: the collapsed traffic ξ routed on a REAL host
  // machine cannot beat O(β(H)) — closing the proof chain 9 → 11 → 12 → 8.
  std::cout << "\nLemma 12 end-to-end: ξ routed on Mesh2(4x4):\n\n";
  {
    const Machine host = make_mesh({4, 4});
    const std::uint32_t parts = 16;
    const std::uint64_t k = (c.circuit_nodes() + parts - 1) / parts;

    // Sample ξ messages: uniform bundles, uniform γ-edge within the bundle,
    // endpoints mapped through the block collapse onto host processors.
    std::vector<std::vector<Vertex>> paths;
    const auto router = make_default_router(host);
    const std::uint32_t n = c.n(), tt = c.t(), w = c.s_levels();
    std::size_t sampled = 0;
    while (sampled < 20000) {
      const Vertex u = static_cast<Vertex>(rng.below(n));
      const Vertex v = static_cast<Vertex>(rng.below(n));
      const std::uint16_t d = c.distance(u, v);
      if (v == u || d == 0 || d > c.cutoff()) continue;
      const std::uint32_t i =
          tt - w + 1 + static_cast<std::uint32_t>(rng.below(w));
      const std::uint32_t j =
          static_cast<std::uint32_t>(rng.below(i - d + 1u));
      const auto ps = static_cast<Vertex>(c.node_id(i, u) / k);
      const auto pq = static_cast<Vertex>(c.node_id(j, v) / k);
      ++sampled;
      if (ps == pq) continue;  // self-loop: free
      paths.push_back(router->route(host.processor(ps), host.processor(pq),
                                    rng));
    }
    PacketSimulator sim(host);
    const BatchStats stats = sim.run_batch(paths, rng);
    ThroughputOptions topt;
    topt.trials = 2;
    const double beta_sym = measure_beta_simulated(host, rng, topt);
    const double xi_rate =
        static_cast<double>(sampled) / static_cast<double>(stats.makespan);
    std::cout << "  xi delivery rate = " << Table::num(xi_rate, 2)
              << " msgs/tick vs beta-hat(H) = " << Table::num(beta_sym, 2)
              << "  (ratio " << Table::num(xi_rate / beta_sym, 2) << ")\n";
    verdict.check(xi_rate < 3.0 * beta_sym,
                  "collapsed traffic cannot beat O(beta(H))  [Lemma 12]");
  }

  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
