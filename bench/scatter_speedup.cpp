// scatter_speedup: scatter-gather acceptance for the fleet front door
// (docs/SCATTER.md).  Starts FOUR real netemu_serve backends (one compute
// thread each, memory-only caches), fronts them with a FleetRouter, and
// times a 64-trial Mesh-k2 estimate two ways through the SAME router:
//
//   whole    — one backend computes all 64 trials (scatter disabled);
//   scatter  — the front door splits the sweep into 4 disjoint trial
//              ranges, one per backend, and merges the answers.
//
// Every timed run uses a fresh seed so both paths are measured cold (the
// sub-range cache keys differ from the whole-query key, so nothing leaks
// between modes).  Gates (exit nonzero on failure):
//   * bit-identity: the merged result document equals the single-backend
//     result for the same query, byte for byte;
//   * fan-out: the scatterer actually dispatched 4 sub-queries per run;
//   * speedup: median whole / median scatter >= --gate (default 2.5x) —
//     enforced only when the host has >= 4 CPUs; on smaller hosts the
//     backends share cores and the ratio is reported as cpu_capped
//     (informational), since parallel speedup is physically unavailable.
//
// Reproduce:  scatter_speedup [--trials 64] [--n 2048] [--reps 3]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "netemu/faultline/process.hpp"
#include "netemu/fleet/front_door.hpp"
#include "netemu/fleet/router.hpp"
#include "netemu/util/cli.hpp"
#include "netemu/util/json.hpp"
#include "netemu/util/table.hpp"

using namespace netemu;

namespace {

constexpr std::size_t kBackends = 4;

Json estimate_query(double n, double trials, double seed) {
  Json q = Json::object();
  q["op"] = "estimate";
  q["family"] = "Mesh";
  q["k"] = 2;
  q["n"] = n;
  q["trials"] = trials;
  q["seed"] = seed;
  return q;
}

/// A copy of `q` carrying the [lo, hi) trial range — rebuilt field by
/// field because Json copies share structure with the source document.
Json ranged(const Json& q, unsigned lo, unsigned hi) {
  Json out = Json::object();
  for (const auto& [k, v] : q.fields()) out[k] = v;
  out["trial_lo"] = lo;
  out["trial_hi"] = hi;
  return out;
}

/// True when the query's 4 sub-ranges rendezvous to 4 DISTINCT backends.
/// Placement is content-hashed, so ~91% of seeds double up somewhere and
/// would serialize two shards on one single-threaded backend; the gate
/// measures the parallel split+merge, not placement luck, so the timed
/// seeds are screened for a one-shard-per-backend layout.
bool distinct_owners(const FleetRouter& router, const Json& q,
                     unsigned trials) {
  std::set<std::size_t> owners;
  for (unsigned i = 0; i < kBackends; ++i) {
    const auto lo = static_cast<unsigned>(
        std::uint64_t(i) * trials / kBackends);
    const auto hi = static_cast<unsigned>(
        std::uint64_t(i + 1) * trials / kBackends);
    owners.insert(router.rank_for(ranged(q, lo, hi))[0]);
  }
  return owners.size() == kBackends;
}

/// The next seed > `from` whose scatter spreads one shard per backend.
double next_scatter_seed(const FleetRouter& router, double n, double trials,
                         double from) {
  for (double seed = from + 1; seed < from + 4096; ++seed) {
    if (distinct_owners(router, estimate_query(n, trials, seed),
                        static_cast<unsigned>(trials))) {
      return seed;
    }
  }
  return from + 1;  // unreachable in practice; fall back to any seed
}

/// Time one query through a front door; returns wall ms, or -1 with the
/// response recorded in `*line_out` either way.
double timed_request(FleetFrontDoor& door, const Json& q,
                     std::string* line_out) {
  bool shutdown = false;
  const auto t0 = std::chrono::steady_clock::now();
  *line_out = door.handle_line(q.dump(), &shutdown);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  std::string perror;
  const Json doc = Json::parse(*line_out, &perror);
  if (!doc.is_object() || !doc["ok"].as_bool()) return -1.0;
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double n = static_cast<double>(cli.get_int("n", 2048));
  const double trials = static_cast<double>(cli.get_int("trials", 64));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const double gate = cli.get_double("gate", 2.5);
  const std::string serve_bin =
      cli.get("serve-bin", bench::default_serve_bin(cli.program()));
  const unsigned cores = std::thread::hardware_concurrency();
  const bool cpu_capped = cores < kBackends;

  bench::print_header("scatter speedup: 4 backends, 64-trial estimate");
  std::cout << "backend: " << serve_bin << "\n"
            << "estimate Mesh k=2 n=" << n << " trials=" << trials << ", "
            << reps << " reps/mode, " << cores << " cores"
            << (cpu_capped ? " (cpu_capped: speedup gate informational)" : "")
            << "\n\n";

  bench::Verdict verdict;

  // One compute thread per backend: the speedup must come from the fleet
  // running shards in parallel, not from a backend's own pool.
  std::vector<ManagedProcess> procs(kBackends);
  std::vector<std::uint16_t> ports(kBackends);
  for (std::size_t i = 0; i < kBackends; ++i) {
    bench::ServeSpawn spawn;
    spawn.threads = 1;
    std::string error;
    if (!bench::spawn_serve(procs[i], serve_bin, spawn, &ports[i], &error)) {
      std::cout << "CHECK FAILED: spawn backend " << i << ": " << error
                << "\n";
      return 1;
    }
  }

  FleetRouter::Options options;
  for (auto port : ports) options.backends.push_back({port, ""});
  options.health.failure_threshold = 3;
  options.health.open_cooldown_ms = 200;
  options.probe_interval_ms = 0;
  options.client.max_attempts = 2;
  options.client.base_backoff_ms = 1;
  options.client.max_backoff_ms = 20;
  options.client.attempt_timeout_ms = 120000;
  FleetRouter router(options);

  FleetFrontDoor::Options whole_options;
  whole_options.scatter.min_trials = 0;  // scatter disabled
  FleetFrontDoor whole_door(router, whole_options);

  FleetFrontDoor::Options scatter_options;
  scatter_options.scatter.min_trials = 2;
  scatter_options.scatter.max_ways = kBackends;
  scatter_options.scatter.straggler_factor = 0.0;  // measure the raw split
  FleetFrontDoor scatter_door(router, scatter_options);

  // Bit-identity first: same seed both ways (the sub-range cache keys are
  // distinct from the whole-query key, so the scatter still computes cold).
  {
    const Json q =
        estimate_query(n, trials, next_scatter_seed(router, n, trials, 0.0));
    std::string whole_line, scatter_line;
    verdict.check(timed_request(whole_door, q, &whole_line) >= 0,
                  "whole-path query answered ok");
    verdict.check(timed_request(scatter_door, q, &scatter_line) >= 0,
                  "scattered query answered ok");
    std::string e1, e2;
    const Json whole_doc = Json::parse(whole_line, &e1);
    const Json scatter_doc = Json::parse(scatter_line, &e2);
    verdict.check(scatter_doc["scattered"].as_uint() == kBackends,
                  "scatter split " + std::to_string(kBackends) + " ways");
    verdict.check(
        whole_doc["result"].dump() == scatter_doc["result"].dump(),
        "merged result bit-identical to the single-backend result");
  }

  // Timed reps: a fresh seed per run keeps every measurement a cold
  // compute; scatter seeds are screened for one-shard-per-backend layout.
  std::vector<double> whole_ms, scatter_ms;
  for (int r = 0; r < reps; ++r) {
    std::string line;
    const double ms = timed_request(
        whole_door, estimate_query(n, trials, 100000.0 + r), &line);
    verdict.check(ms >= 0, "whole rep " + std::to_string(r) + " ok");
    if (ms >= 0) whole_ms.push_back(ms);
  }
  const auto subs_before = scatter_door.scatter_stats().subqueries;
  double seed = 200000.0;
  for (int r = 0; r < reps; ++r) {
    seed = next_scatter_seed(router, n, trials, seed);
    std::string line;
    const double ms =
        timed_request(scatter_door, estimate_query(n, trials, seed), &line);
    verdict.check(ms >= 0, "scatter rep " + std::to_string(r) + " ok");
    if (ms >= 0) scatter_ms.push_back(ms);
  }
  const auto subs = scatter_door.scatter_stats().subqueries - subs_before;
  verdict.check(subs == kBackends * static_cast<std::uint64_t>(reps),
                "every timed scatter dispatched " +
                    std::to_string(kBackends) + " sub-queries");

  Table t({"mode", "reps", "median_ms", "best_ms"});
  const auto med = [](const std::vector<double>& v) {
    return v.empty() ? 0.0 : median(v);
  };
  const auto best = [](const std::vector<double>& v) {
    return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
  };
  t.add_row({"whole", Table::integer(std::int64_t(whole_ms.size())),
             Table::num(med(whole_ms), 1), Table::num(best(whole_ms), 1)});
  t.add_row({"scatter", Table::integer(std::int64_t(scatter_ms.size())),
             Table::num(med(scatter_ms), 1),
             Table::num(best(scatter_ms), 1)});
  t.print(std::cout);

  const double speedup =
      med(scatter_ms) > 0 ? med(whole_ms) / med(scatter_ms) : 0.0;
  std::cout << "\nspeedup: " << Table::num(speedup, 2) << "x (gate "
            << Table::num(gate, 1) << "x"
            << (cpu_capped ? ", waived: cpu_capped" : "") << ")\n";
  if (!cpu_capped) {
    verdict.check(speedup >= gate,
                  "scatter speedup >= " + Table::num(gate, 1) + "x (got " +
                      Table::num(speedup, 2) + "x)");
  }

  router.stop();
  for (auto& p : procs) p.terminate(2000);

  std::cout << "\n"
            << (verdict.failures() == 0 ? "BENCH PASS: scatter-gather speedup"
                                        : "BENCH FAIL")
            << "\n";
  return verdict.exit_code();
}
