// Ablation: Valiant two-phase randomized routing vs direct routing under
// adversarial functional patterns.  Direct minimal routing concentrates
// transpose / bit-reversal traffic on a few wires; routing through a random
// intermediate restores the symmetric-traffic rate at the cost of doubled
// distance — the randomization device behind the universal-routing theorem
// ([10]) that Theorem 6's upper bound leans on.

#include "bench_common.hpp"
#include "netemu/routing/throughput.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header("Ablation: Valiant randomized routing on adversarial patterns");
  Prng rng(53);
  Verdict verdict;

  const Machine mesh = make_machine(Family::kMesh, 1024, 2, rng);
  std::vector<Vertex> procs(mesh.graph.num_vertices());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    procs[i] = static_cast<Vertex>(i);
  }

  struct Pattern {
    const char* name;
    TrafficDistribution dist;
  };
  std::vector<Pattern> patterns;
  patterns.push_back({"symmetric", TrafficDistribution::symmetric(procs)});
  patterns.push_back({"transpose", TrafficDistribution::transpose(procs)});
  patterns.push_back(
      {"bit-reversal", TrafficDistribution::bit_reversal(procs)});
  patterns.push_back(
      {"permutation", TrafficDistribution::permutation(procs, rng)});

  Table t({"pattern", "direct rate", "valiant rate", "valiant/direct"});
  const auto direct = make_default_router(mesh);
  const auto valiant = make_valiant_router(mesh);
  double transpose_gain = 0.0, symmetric_gain = 0.0;
  for (const Pattern& p : patterns) {
    ThroughputOptions opt;
    opt.trials = 2;
    const double r_direct =
        measure_throughput(mesh, *direct, p.dist, rng, opt).rate;
    const double r_valiant =
        measure_throughput(mesh, *valiant, p.dist, rng, opt).rate;
    const double gain = r_valiant / r_direct;
    if (std::string(p.name) == "transpose") transpose_gain = gain;
    if (std::string(p.name) == "symmetric") symmetric_gain = gain;
    t.add_row({p.name, Table::num(r_direct, 2), Table::num(r_valiant, 2),
               Table::num(gain, 2)});
  }
  t.print(std::cout);

  // On already-random traffic Valiant only pays its 2x distance tax; on the
  // adversarial transpose it must win relative to that baseline.
  verdict.check(symmetric_gain < 1.1,
                "valiant does not help symmetric traffic");
  verdict.check(transpose_gain > 1.2 * symmetric_gain,
                "valiant rescues the transpose pattern");

  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
