// Reproduces Table 4: β (delivery rate under symmetric traffic) per machine
// family, measured with the packet simulator over a ladder of sizes, then
// fitted on log-log axes against the paper's closed form.  Λ is checked as
// the measured diameter against its Θ-form.  Shape criterion: after dividing
// out the known lg-factor, the fitted exponent of n must be within ±0.15 of
// the paper's (±0.2 for the noisier randomized families).

#include <cmath>

#include "bench_common.hpp"
#include "netemu/bandwidth/empirical.hpp"
#include "netemu/graph/algorithms.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header("Table 4: bandwidth beta and minimal time Lambda per family");
  Prng rng(20260707);
  Verdict verdict;

  Table table({"Machine", "sizes", "beta-hat (measured)", "fit n-exp",
               "paper n-exp", "Lambda fit", "paper Lambda", "verdict"});

  for (const Ladder& ladder : table4_ladders()) {
    const AsymFn beta = beta_theory(ladder.family, ladder.k);
    const AsymFn lambda = lambda_theory(ladder.family, ladder.k);

    std::vector<double> sizes, rates, diams;
    std::string rate_cells, size_cells;
    for (std::size_t target : ladder.targets) {
      const Machine m = make_machine(ladder.family, target, ladder.k, rng);
      ThroughputOptions opt;
      opt.trials = 2;
      const double rate = measure_beta_simulated(m, rng, opt);
      sizes.push_back(static_cast<double>(m.graph.num_vertices()));
      rates.push_back(rate);
      diams.push_back(static_cast<double>(diameter_double_sweep(m.graph, rng)));
      if (!size_cells.empty()) {
        size_cells += ",";
        rate_cells += ",";
      }
      size_cells += Table::num(sizes.back(), 0);
      rate_cells += Table::num(rate, 1);
    }

    // Divide out the paper's lg-factor, then the residual slope must match
    // the paper's n-exponent.
    const PowerFit beta_fit = fit_power_with_log(sizes, rates, beta.q);
    const PowerFit lam_fit = fit_power_with_log(sizes, diams, lambda.q);

    const bool randomized = ladder.family == Family::kExpander ||
                            ladder.family == Family::kMultibutterfly;
    const double tol = randomized ? 0.2 : 0.15;
    const bool beta_ok = std::abs(beta_fit.exponent - beta.p) <= tol;
    const bool lam_ok = std::abs(lam_fit.exponent - lambda.p) <= 0.2;
    verdict.check(beta_ok, ladder_label(ladder) + " beta exponent " +
                               Table::num(beta_fit.exponent) + " vs " +
                               Table::num(beta.p));
    verdict.check(lam_ok, ladder_label(ladder) + " Lambda exponent " +
                              Table::num(lam_fit.exponent) + " vs " +
                              Table::num(lambda.p));

    table.add_row({ladder_label(ladder), size_cells, rate_cells,
                   Table::num(beta_fit.exponent, 2), beta.theta_string(),
                   Table::num(lam_fit.exponent, 2), lambda.theta_string(),
                   beta_ok && lam_ok ? "PASS" : "CHECK"});
  }

  table.print(std::cout);
  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
