// Reproduces the §1.2 comparison against Koch–Leighton–Maggs–Rao–Rosenberg
// [7]: the paper claims its bandwidth bound matches the congestion-based
// bounds of [7] for non-expander guests, while the distance-based bound of
// [7] captures a different (distance) effect the bandwidth method does not.

#include <cmath>

#include "bench_common.hpp"
#include "netemu/emulation/bounds.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header("Baseline comparison vs Koch et al. [7]");
  Verdict verdict;

  // --- mesh_k on mesh_j: bandwidth == congestion bound (same exponent) ----
  std::cout << "k-dim mesh guest on j-dim mesh host, |G| = |H| = n:\n\n";
  Table t1({"k", "j", "n", "bandwidth bound (ours)", "congestion bound [7]",
            "ratio"});
  for (unsigned k = 2; k <= 4; ++k) {
    for (unsigned j = 1; j < k; ++j) {
      for (double n : {1 << 12, 1 << 20}) {
        const SlowdownBounds b =
            slowdown_bounds(Family::kMesh, k, n, Family::kMesh, j, n);
        const double koch = koch_congestion_bound_mesh_on_mesh(k, j, n);
        const double ratio = b.bandwidth / koch;
        t1.add_row({Table::integer(k), Table::integer(j), Table::num(n, 0),
                    Table::num(b.bandwidth, 1), Table::num(koch, 1),
                    Table::num(ratio, 2)});
        verdict.check(ratio > 0.05 && ratio < 20.0,
                      "mesh" + std::to_string(k) + " on mesh" +
                          std::to_string(j) + " ratio");
      }
    }
  }
  t1.print(std::cout);

  // --- tree guest on mesh_k: distance-based bound [7] ----------------------
  std::cout << "\nTree guest on k-dim mesh host (distance effect, which the\n"
               "bandwidth method does NOT capture — β(tree) = Θ(1) gives a\n"
               "trivial bound while [7] gets a polynomial one):\n\n";
  Table t2({"k", "n", "distance bound [7]", "bandwidth bound (ours)"});
  for (unsigned k = 1; k <= 3; ++k) {
    const double n = 1 << 20;
    const double koch = koch_distance_bound_tree_on_mesh(n, k);
    const SlowdownBounds b =
        slowdown_bounds(Family::kTree, 1, n, Family::kMesh, k, n);
    t2.add_row({Table::integer(k), Table::num(n, 0), Table::num(koch, 1),
                Table::num(b.bandwidth, 2)});
    verdict.check(koch > b.bandwidth,
                  "distance bound dominates for tree guests, k=" +
                      std::to_string(k));
  }
  t2.print(std::cout);

  // --- butterfly on mesh_k: congestion bound is exponential ----------------
  std::cout << "\nButterfly guest on k-dim mesh host of size m: [7] proves\n"
               "S >= 2^Ω(m^{1/k}) — far stronger than any polynomial; our\n"
               "bandwidth bound is polynomial, as the paper concedes for\n"
               "expander-like effects:\n\n";
  Table t3({"k", "m", "lg2(S) >= [7]", "bandwidth bound (ours)"});
  for (unsigned k = 2; k <= 3; ++k) {
    const double m = 4096, n = 1 << 20;
    const double koch_lg = koch_congestion_bound_butterfly_on_mesh_lg(k, m);
    const SlowdownBounds b =
        slowdown_bounds(Family::kButterfly, 1, n, Family::kMesh, k, m);
    t3.add_row({Table::integer(k), Table::num(m, 0), Table::num(koch_lg, 1),
                Table::num(b.bandwidth, 1)});
    verdict.check(koch_lg > std::log2(b.bandwidth),
                  "butterfly congestion bound is exponential, k=" +
                      std::to_string(k));
  }
  t3.print(std::cout);

  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
