// The paper's §3 extension: lower bounds for redundant simulations of
// ALGORITHMS, obtained by bounding the bandwidth demand of their
// communication patterns.  For each classic parallel algorithm and each
// host family we print the Lemma 8 cut lower bound on the pattern's routing
// time, the measured time of an actual schedule, and the implied slowdown
// relative to the algorithm's native round count.
//
// Shape checks: the measured schedule always respects the lower bound, and
// the qualitative ordering is the expected one — bandwidth-hungry patterns
// (all-to-all, transpose, FFT) are hurt on weak hosts while local patterns
// (stencil, odd-even) are not.

#include "bench_common.hpp"
#include "netemu/algopattern/execution.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header("Algorithm-pattern slowdown bounds (the paper's §3 program)");
  Prng rng(43);
  Verdict verdict;

  const std::pair<Family, unsigned> host_specs[] = {
      {Family::kLinearArray, 1}, {Family::kTree, 1},   {Family::kXTree, 1},
      {Family::kMesh, 2},        {Family::kDeBruijn, 1},
      {Family::kHypercube, 1},
  };

  Table t({"pattern", "host", "cut LB (ticks)", "measured (ticks)",
           "LB slowdown", "measured slowdown", "verdict"});
  double fft_on_line = 0, fft_on_cube = 0;
  double stencil_on_line = 0, a2a_on_line = 0;
  for (const AlgorithmPattern& pattern : standard_patterns(256)) {
    for (const auto& [hf, hk] : host_specs) {
      const Machine host = make_machine(hf, pattern.processors, hk, rng);
      const PatternExecution ex = execute_pattern(pattern, host, rng);
      const bool ok =
          static_cast<double>(ex.measured_time) >= ex.cut_lower_bound * 0.99;
      verdict.check(ok, pattern.name + " on " + host.name +
                            ": measured below cut bound");
      t.add_row({ex.pattern_name, ex.host_name,
                 Table::num(ex.cut_lower_bound, 1),
                 Table::integer((long long)ex.measured_time),
                 Table::num(ex.bound_slowdown, 2),
                 Table::num(ex.measured_slowdown, 2), ok ? "PASS" : "CHECK"});
      if (pattern.name.rfind("FFT", 0) == 0) {
        if (hf == Family::kLinearArray) fft_on_line = ex.measured_slowdown;
        if (hf == Family::kHypercube) fft_on_cube = ex.measured_slowdown;
      }
      if (hf == Family::kLinearArray) {
        if (pattern.name.rfind("Stencil", 0) == 0) {
          stencil_on_line = ex.measured_slowdown;
        }
        if (pattern.name.rfind("AllToAll", 0) == 0) {
          a2a_on_line = ex.measured_slowdown;
        }
      }
    }
  }
  t.print(std::cout);

  // Qualitative shape of the §3 claim.
  verdict.check(fft_on_line > 4.0 * fft_on_cube,
                "FFT is bandwidth-starved on the line, native on the cube");
  verdict.check(a2a_on_line > 4.0 * stencil_on_line,
                "all-to-all suffers more than the local stencil on a line");

  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
