// overload_soak: overload-guard acceptance (docs/GUARD.md).  For each seed
// it starts ONE real netemu_serve backend with the guard enabled and a
// deliberately small admission budget, then storms it with a heterogeneous
// client mix (netemu/faultline/client_mix.hpp) at several times its
// capacity:
//
//   * well-behaved clients — closed loop, think time between requests,
//     honour retry_after_ms backoff hints;
//   * greedy clients — many connections per identity, zero think time,
//     ignore every backoff hint;
//   * a malformed client — interleaves protocol garbage with real queries.
//
// Every query is an `estimate` with a globally unique seed, so every ok
// response can be checked for correctness (the result echoes the seed) and
// for duplication (a unique query must never come back cache_hit:true).
//
// Invariants checked per seed (exit nonzero on any failure):
//   * fairness: well-behaved clients collectively keep >= 70% of their
//     per-identity fair share of served queries, greedy spam notwithstanding;
//   * bounded tail: well-behaved p99 latency stays under --p99-gate-ms;
//   * zero wrong answers, zero duplicate (cache-contaminated) results;
//   * brownout honesty: degraded responses are never served from cache —
//     re-requesting a formerly degraded query yields a fresh full answer;
//   * the backend survives the malformed client (still answers ping);
//   * a mid-storm SIGTERM drains CLEANLY: exit status 0, under 5 seconds,
//     while the storm is still firing.
//
// Reproduce one seed exactly:  overload_soak --seeds 1 --first-seed <s>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "netemu/faultline/client_mix.hpp"
#include "netemu/faultline/process.hpp"
#include "netemu/scope/metrics.hpp"
#include "netemu/service/client.hpp"
#include "netemu/util/cli.hpp"
#include "netemu/util/json.hpp"
#include "netemu/util/table.hpp"

using namespace netemu;

namespace {

constexpr double kN = 64;       // estimate graph size (mesh2, 8x8)
constexpr double kTrials = 8;   // per-query trials (brownout keeps 2)

struct ThreadResult {
  std::size_t sent = 0;
  std::size_t ok = 0;         ///< ok responses (degraded included)
  std::size_t degraded = 0;   ///< ... of ok: browned-out partials
  std::size_t shed = 0;       ///< overloaded errors
  std::size_t other_error = 0;
  std::size_t transport = 0;
  std::size_t wrong = 0;      ///< echo mismatch (must stay 0)
  std::size_t duplicate = 0;  ///< unique query answered cache_hit (must be 0)
  std::vector<double> latency_ms;
  std::vector<double> degraded_seeds;  ///< for the never-cached recheck
};

struct SeedResult {
  std::uint64_t seed = 0;
  std::size_t well_ok = 0, greedy_ok = 0;
  std::size_t sheds = 0, degraded = 0, wrong = 0, duplicates = 0;
  std::size_t transport = 0;
  double well_share = 0.0;     ///< well_ok / fair expectation
  double well_p99_ms = 0.0;
  std::size_t rechecked = 0;   ///< formerly degraded queries re-requested
  std::size_t recheck_violations = 0;  ///< ... served degraded-from-cache
  bool ping_ok = false;        ///< backend alive after the storm
  bool drain_clean = false;    ///< mid-storm SIGTERM exited 0
  double drain_ms = 0.0;
  std::string error;
  double secs = 0.0;
};

bool start_backend(ManagedProcess& proc, const std::string& serve_bin,
                   std::uint16_t* port, std::string* error) {
  // Small compute pool + small guard budget: the storm must actually
  // overload it.  client_share 0.2 caps any one identity at 20% of the
  // budget so two greedy identities cannot monopolize admission.
  bench::ServeSpawn spawn;
  spawn.extra_args = {
      "--guard",
      "--guard-budget", "12",
      "--guard-share", "0.2",
      "--guard-target-p95-ms", "100",
      "--drain-ms", "2000",
  };
  return bench::spawn_serve(proc, serve_bin, spawn, port, error);
}

Json query_for(const std::string& client, double unique_seed) {
  Json q = Json::object();
  q["op"] = "estimate";
  q["family"] = "Mesh";
  q["k"] = 2;
  q["n"] = kN;
  q["trials"] = kTrials;
  q["seed"] = unique_seed;
  q["client"] = client;
  return q;
}

/// One storm thread: a closed loop on one connection until `stop`.
/// `seed_base` spaces the unique-seed counters so no two threads (across
/// phases and seeds) ever collide.
void storm_thread(const ClientProfile& profile, double seed_base,
                  std::uint16_t port, const std::atomic<bool>& stop,
                  ThreadResult& out) {
  Prng prng(profile.seed);
  Client client;
  std::string error;
  if (!client.connect(port, &error)) {
    ++out.transport;
    return;
  }
  std::string response_line;
  double next_seed = seed_base;
  using Clock = std::chrono::steady_clock;
  while (!stop.load(std::memory_order_relaxed)) {
    std::string line;
    double unique_seed = 0.0;
    const bool garbage =
        profile.kind == ClientKind::kMalformed && prng.below(4) != 0;
    if (garbage) {
      line = malformed_request_line(prng);
    } else {
      unique_seed = next_seed++;
      line = query_for(profile.name, unique_seed).dump();
    }
    ++out.sent;
    const auto t0 = Clock::now();
    if (!client.request_raw(line, response_line)) {
      ++out.transport;
      // Reconnect once; a drained/stopped backend leaves this failing and
      // the loop spins until the harness raises `stop`.
      if (!client.connect(port, &error)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      continue;
    }
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    const Json response = Json::parse(response_line);
    if (garbage) {
      // Whatever the garbage was, the server must answer a line; counting
      // it as other_error is enough — the gates only require survival.
      if (!response.is_object() || !response["ok"].as_bool()) {
        ++out.other_error;
      } else {
        ++out.ok;
      }
      continue;
    }
    if (response.is_object() && response["ok"].as_bool()) {
      ++out.ok;
      out.latency_ms.push_back(ms);
      const Json& result = response["result"];
      if (result["seed"].as_number() != unique_seed ||
          result["machine"]["n"].as_number() != kN) {
        ++out.wrong;
      }
      if (response["cache_hit"].as_bool()) ++out.duplicate;
      if (response["degraded"].as_bool()) {
        ++out.degraded;
        if (out.degraded_seeds.size() < 16) {
          out.degraded_seeds.push_back(unique_seed);
        }
      }
    } else if (response.is_object() && response["overloaded"].as_bool()) {
      ++out.shed;
      if (profile.honor_retry_after) {
        const auto hint = response["retry_after_ms"].as_uint();
        if (hint > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              std::min<std::uint64_t>(hint, 100)));
        }
      }
    } else {
      ++out.other_error;
    }
    if (profile.think_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(profile.think_ms));
    }
  }
}

/// Launch the mix (greedy identities get `greedy_threads` connections each)
/// and run it for `storm_ms`.  `phase` spaces the seed counters.
std::vector<ThreadResult> run_storm(const std::vector<ClientProfile>& mix,
                                    std::size_t greedy_threads,
                                    std::uint16_t port, std::uint64_t storm_ms,
                                    double phase_base,
                                    const std::atomic<bool>* external_stop,
                                    std::atomic<bool>& stop) {
  std::vector<const ClientProfile*> slots;
  for (const auto& p : mix) {
    const std::size_t threads =
        p.kind == ClientKind::kGreedy ? greedy_threads : 1;
    for (std::size_t t = 0; t < threads; ++t) slots.push_back(&p);
  }
  std::vector<ThreadResult> results(slots.size());
  std::vector<std::thread> threads;
  threads.reserve(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    // 1e7 seeds per thread-slot, 1e9 per phase: collision-free and exact
    // in a double.
    const double seed_base =
        phase_base + static_cast<double>(s) * 1e7 + 1.0;
    threads.emplace_back([&, s, seed_base] {
      storm_thread(*slots[s], seed_base, port, stop, results[s]);
    });
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(storm_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (external_stop && external_stop->load()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  return results;
}

SeedResult run_seed(std::uint64_t seed, std::uint64_t storm_ms,
                    std::size_t greedy_threads,
                    const std::string& serve_bin) {
  SeedResult out;
  out.seed = seed;
  const auto start = std::chrono::steady_clock::now();

  ManagedProcess backend;
  std::uint16_t port = 0;
  if (!start_backend(backend, serve_bin, &port, &out.error)) return out;

  ClientMixSpec spec;
  spec.seed = seed;
  spec.well_behaved = 4;
  spec.greedy = 2;
  spec.malformed = 1;
  spec.think_ms = 2;
  const std::vector<ClientProfile> mix = make_client_mix(spec);

  // ---- Phase A: the measured storm. --------------------------------------
  std::atomic<bool> stop_a{false};
  const double seed_phase = static_cast<double>(seed) * 1e10;
  std::vector<ThreadResult> storm = run_storm(
      mix, greedy_threads, port, storm_ms, seed_phase, nullptr, stop_a);

  std::vector<double> well_latency;
  std::vector<double> degraded_seeds;
  std::size_t slot = 0;
  for (const auto& p : mix) {
    const std::size_t threads =
        p.kind == ClientKind::kGreedy ? greedy_threads : 1;
    for (std::size_t t = 0; t < threads; ++t, ++slot) {
      const ThreadResult& r = storm[slot];
      out.sheds += r.shed;
      out.degraded += r.degraded;
      out.wrong += r.wrong;
      out.duplicates += r.duplicate;
      out.transport += r.transport;
      if (p.kind == ClientKind::kWellBehaved) {
        out.well_ok += r.ok;
        well_latency.insert(well_latency.end(), r.latency_ms.begin(),
                            r.latency_ms.end());
      } else if (p.kind == ClientKind::kGreedy) {
        out.greedy_ok += r.ok;
      }
      degraded_seeds.insert(degraded_seeds.end(), r.degraded_seeds.begin(),
                            r.degraded_seeds.end());
    }
  }
  // Fairness: the guard's DRR treats identities equally, so the
  // well-behaved identities' fair share of everything actually served is
  // well / (well + greedy).
  const double fair_fraction =
      static_cast<double>(spec.well_behaved) /
      static_cast<double>(spec.well_behaved + spec.greedy);
  const double total_query_ok =
      static_cast<double>(out.well_ok + out.greedy_ok);
  out.well_share =
      total_query_ok > 0.0
          ? static_cast<double>(out.well_ok) / (total_query_ok * fair_fraction)
          : 0.0;
  if (!well_latency.empty()) {
    out.well_p99_ms = scope::exact_quantile(std::move(well_latency), 0.99);
  }

  // ---- Phase B: quiet rechecks on the live backend. ----------------------
  {
    Client client;
    std::string error;
    if (client.connect(port, &error)) {
      Json ping = Json::object();
      ping["op"] = "ping";
      std::string response_line;
      if (client.request_raw(ping.dump(), response_line)) {
        out.ping_ok = Json::parse(response_line)["ok"].as_bool();
      }
      // Brownout honesty: a degraded partial must not have been cached, so
      // re-requesting it on an idle server yields a fresh FULL answer.
      const std::size_t recheck = std::min<std::size_t>(degraded_seeds.size(), 5);
      for (std::size_t i = 0; i < recheck; ++i) {
        const Json q = query_for("recheck", degraded_seeds[i]);
        if (!client.request_raw(q.dump(), response_line)) break;
        const Json response = Json::parse(response_line);
        if (!response["ok"].as_bool()) continue;  // shed: inconclusive, skip
        ++out.rechecked;
        if (response["cache_hit"].as_bool() &&
            response["degraded"].as_bool()) {
          ++out.recheck_violations;
        }
      }
    } else {
      out.error = "post-storm connect failed: " + error;
    }
  }

  // ---- Phase C: SIGTERM mid-storm; the drain must be clean. --------------
  std::atomic<bool> stop_c{false};
  std::atomic<bool> backend_gone{false};
  std::thread terminator([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    const auto term_sent = std::chrono::steady_clock::now();
    ::kill(backend.pid(), SIGTERM);
    const auto deadline = term_sent + std::chrono::seconds(5);
    while (backend.running() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    out.drain_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - term_sent)
                       .count();
    out.drain_clean = !backend.running() && backend.exit_status() == 0;
    backend_gone.store(true);
  });
  run_storm(mix, greedy_threads, port, /*storm_ms=*/6000,
            seed_phase + 5e9, &backend_gone, stop_c);
  terminator.join();

  backend.terminate(2000);
  out.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const auto first_seed =
      static_cast<std::uint64_t>(cli.get_int("first-seed", 1));
  const auto storm_ms =
      static_cast<std::uint64_t>(cli.get_int("storm-ms", 2500));
  const auto greedy_threads =
      static_cast<std::size_t>(cli.get_int("greedy-threads", 6));
  const double p99_gate_ms = cli.get_double("p99-gate-ms", 2000.0);
  const std::string serve_bin =
      cli.get("serve-bin", bench::default_serve_bin(cli.program()));

  bench::print_header(
      "overload soak: guarded backend vs well-behaved + greedy + malformed");
  std::cout << "backend: " << serve_bin << "\n"
            << "storm " << storm_ms << " ms/seed, 4 well-behaved + 2 greedy ("
            << greedy_threads << " conns each) + 1 malformed, seeds "
            << first_seed << ".." << (first_seed + seeds - 1) << "\n\n";

  bench::Verdict verdict;
  Table t({"seed", "well ok", "greedy ok", "share", "p99 ms", "shed",
           "degraded", "wrong", "dup", "drain ms", "secs"});
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const SeedResult r =
        run_seed(first_seed + s, storm_ms, greedy_threads, serve_bin);
    t.add_row({Table::integer(std::int64_t(r.seed)),
               Table::integer(std::int64_t(r.well_ok)),
               Table::integer(std::int64_t(r.greedy_ok)),
               Table::num(r.well_share, 2), Table::num(r.well_p99_ms, 1),
               Table::integer(std::int64_t(r.sheds)),
               Table::integer(std::int64_t(r.degraded)),
               Table::integer(std::int64_t(r.wrong)),
               Table::integer(std::int64_t(r.duplicates)),
               Table::num(r.drain_ms, 1), Table::num(r.secs, 2)});

    const std::string tag = "seed " + std::to_string(r.seed);
    verdict.check(r.error.empty(), tag + ": harness ran (" +
                                       (r.error.empty() ? "ok" : r.error) +
                                       ")");
    if (!r.error.empty()) continue;
    verdict.check(r.well_ok > 0, tag + ": well-behaved clients made progress");
    verdict.check(r.well_share >= 0.70,
                  tag + ": well-behaved goodput >= 70% of fair share (got " +
                      std::to_string(r.well_share) + ")");
    verdict.check(r.well_p99_ms <= p99_gate_ms,
                  tag + ": well-behaved p99 bounded (" +
                      std::to_string(r.well_p99_ms) + " ms <= " +
                      std::to_string(p99_gate_ms) + " ms)");
    verdict.check(r.wrong == 0, tag + ": zero wrong answers");
    verdict.check(r.duplicates == 0, tag + ": zero duplicate results");
    verdict.check(r.recheck_violations == 0,
                  tag + ": degraded responses never served from cache (" +
                      std::to_string(r.rechecked) + " rechecked)");
    verdict.check(r.ping_ok,
                  tag + ": backend survived the malformed client");
    verdict.check(r.drain_clean,
                  tag + ": mid-storm SIGTERM drained cleanly (exit 0, " +
                      std::to_string(r.drain_ms) + " ms)");
  }
  t.print(std::cout);

  std::cout << "\n"
            << (verdict.failures() == 0
                    ? "SOAK PASS: guarded overload held fairness, "
                      "correctness, and clean drain"
                    : "SOAK FAIL")
            << "\n";
  return verdict.exit_code();
}
