// Reproduces Table 3: maximum host sizes for efficient emulation of
// Butterflies, de Bruijn graphs, Shuffle-Exchanges, Cube-Connected-Cycles,
// Multibutterflies, Expanders, and Weak Hypercubes (all β = Θ(n / lg n)).
//
// Expected shapes (derived exactly as the paper does):
//   constant-bandwidth hosts (LinearArray/Tree/Bus/WeakPPN):  Θ(lg |G|)
//   X-Tree:                                       Θ(lg |G| · lg lg |G|)
//   k-dim Mesh / Pyramid / Multigrid / MoT / XGrid:        Θ(lg^k |G|)
//
// Empirical spot check: de Bruijn guest on 2-d mesh hosts across the
// predicted Θ(lg² n) threshold.

#include "bench_common.hpp"
#include "netemu/emulation/engine.hpp"
#include "netemu/emulation/tables.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header(
      "Table 3: max host sizes, guests = Butterfly / DeBruijn / SE / CCC / "
      "Multibutterfly / Expander / WeakHypercube");
  Verdict verdict;

  paper_table3(1 << 20).print(std::cout);

  // Mechanical shape assertions on every row.
  const auto hosts = standard_hosts({1, 2, 3});
  const Family guests[] = {
      Family::kButterfly,      Family::kDeBruijn, Family::kShuffleExchange,
      Family::kCCC,            Family::kMultibutterfly,
      Family::kExpander,       Family::kHypercube,
  };
  for (Family g : guests) {
    for (const HostSpec& h : hosts) {
      const auto e = max_host_size(g, 1, 1 << 20, h);
      std::string expect;
      switch (h.family) {
        case Family::kLinearArray:
        case Family::kTree:
        case Family::kGlobalBus:
        case Family::kWeakPPN:
          expect = "Θ(lg |G|)";
          break;
        case Family::kXTree:
          expect = "Θ(lg |G| lg lg |G|)";
          break;
        default:  // k-dim mesh-bandwidth hosts
          expect = h.k == 1 ? "Θ(lg |G|)"
                            : "Θ(lg |G|^" + std::to_string(h.k) + ")";
      }
      verdict.check(e.symbolic == expect,
                    std::string(family_name(g)) + " on " + h.label() + ": " +
                        e.symbolic + " != " + expect);
    }
  }

  // --- empirical spot check: the paper's flagship example ------------------
  std::cout << "\nSpot check: DeBruijn(4096) guest on Mesh2 hosts.\n"
               "Derived max host = Θ(lg² |G|) = 144 here; inefficiency\n"
               "I = |H|·S/|G| should degrade beyond it.\n\n";
  Prng rng(11);
  const Machine guest = make_debruijn(12);
  Table t({"|H|", "slowdown S", "inefficiency I", "load bound n/m"});
  std::vector<double> ineff;
  for (std::uint32_t side : {4u, 12u, 32u, 64u}) {
    const Machine host = make_mesh({side, side});
    EmulationOptions opt;
    opt.guest_steps = 2;
    const EmulationResult r = emulate(guest, host, rng, opt);
    const double n = static_cast<double>(guest.graph.num_vertices());
    const double inefficiency =
        static_cast<double>(host.graph.num_vertices()) * r.slowdown / n;
    ineff.push_back(inefficiency);
    t.add_row({Table::integer(side * side), Table::num(r.slowdown, 1),
               Table::num(inefficiency, 2),
               Table::num(n / (side * side), 1)});
  }
  t.print(std::cout);
  verdict.check(ineff[0] < 6.0, "inefficiency O(1) below lg^2 threshold");
  verdict.check(ineff.back() > 2.0 * ineff.front(),
                "inefficiency degrades past lg^2 threshold");

  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
