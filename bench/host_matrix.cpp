// Extension artifact: the FULL guest x host matrix of the theory — for
// every ordered pair of machine families, the communication-induced
// slowdown exponent at equal sizes and the maximum efficient host size.
// The paper tabulates selected corners (Tables 1-3); the solver generalizes
// mechanically to all of them.

#include <cmath>

#include "bench_common.hpp"
#include "netemu/emulation/host_size.hpp"

using namespace netemu;
using namespace netemu::bench;

namespace {

std::string label(Family f, unsigned k) {
  std::string s = family_name(f);
  if (family_is_dimensional(f)) s += std::to_string(k);
  return s;
}

}  // namespace

int main() {
  print_header("Full guest x host matrix: max efficient host size Θ-forms");
  Verdict verdict;

  // Representative column set (every distinct bandwidth shape).
  const std::vector<std::pair<Family, unsigned>> machines = {
      {Family::kGlobalBus, 1}, {Family::kLinearArray, 1},
      {Family::kTree, 1},      {Family::kXTree, 1},
      {Family::kMesh, 2},      {Family::kMesh, 3},
      {Family::kMeshOfTrees, 2}, {Family::kPyramid, 2},
      {Family::kButterfly, 1},  {Family::kDeBruijn, 1},
      {Family::kHypercube, 1},  {Family::kExpander, 1},
      {Family::kFatTree, 1},
  };

  std::vector<std::string> header{"Guest \\ Host"};
  for (const auto& [f, k] : machines) header.push_back(label(f, k));
  Table t(std::move(header));

  const double n = 1 << 20;
  std::size_t unconstrained = 0, constrained = 0;
  for (const auto& [gf, gk] : machines) {
    std::vector<std::string> row{label(gf, gk)};
    for (const auto& [hf, hk] : machines) {
      const HostSizeEntry e = max_host_size(gf, gk, n, {hf, hk});
      std::string cell = e.symbolic;
      const auto cut = cell.find("  [");
      if (cut != std::string::npos) cell.resize(cut);  // compact rendering
      row.push_back(cell);
      (cell.find("no bandwidth") != std::string::npos ? unconstrained
                                                      : constrained)++;
      // Internal consistency: the numeric root is within [2, n].
      verdict.check(e.numeric >= 2.0 && e.numeric <= n + 1,
                    label(gf, gk) + " on " + label(hf, hk) + " numeric root");
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::cout << "\ncells with a real bandwidth obstruction: " << constrained
            << ", unconstrained: " << unconstrained << "\n";
  // The matrix must be monotone along the known bandwidth ordering: a
  // strictly weaker host never allows a larger max size.  Spot-check the
  // de Bruijn guest row across bus -> tree -> x-tree -> mesh2 -> mesh3.
  double prev = 0;
  for (const auto& [hf, hk] :
       std::vector<std::pair<Family, unsigned>>{{Family::kGlobalBus, 1},
                                                {Family::kXTree, 1},
                                                {Family::kMesh, 2},
                                                {Family::kMesh, 3},
                                                {Family::kDeBruijn, 1}}) {
    const double cur =
        max_host_size(Family::kDeBruijn, 1, n, {hf, hk}).numeric;
    verdict.check(cur >= prev, std::string("monotone hosts: ") +
                                   label(hf, hk));
    prev = cur;
  }

  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
