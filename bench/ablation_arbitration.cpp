// Ablation (DESIGN.md §4): router arbitration policy and partition strategy
// affect the measured constants, never the exponents the paper's tables are
// built from.

#include <cmath>

#include "bench_common.hpp"
#include "netemu/bandwidth/empirical.hpp"
#include "netemu/emulation/engine.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header("Ablation: arbitration policy and partition strategy");
  Prng rng(31);
  Verdict verdict;

  // --- arbitration: per-policy beta-hat and the fitted exponent ------------
  Table t({"machine", "farthest-first", "fifo", "random",
           "max/min ratio"});
  const std::pair<Family, unsigned> machines[] = {
      {Family::kMesh, 2}, {Family::kDeBruijn, 1}, {Family::kTree, 1}};
  for (const auto& [f, k] : machines) {
    std::vector<double> sizes, slopes;
    std::vector<std::string> cells;
    double lo = 1e300, hi = 0;
    for (Arbitration arb : {Arbitration::kFarthestFirst, Arbitration::kFifo,
                            Arbitration::kRandom}) {
      const Machine m = make_machine(f, 1024, k, rng);
      ThroughputOptions opt;
      opt.arbitration = arb;
      opt.trials = 2;
      const double rate = measure_beta_simulated(m, rng, opt);
      cells.push_back(Table::num(rate, 2));
      lo = std::min(lo, rate);
      hi = std::max(hi, rate);
    }
    const double ratio = hi / lo;
    t.add_row({std::string(family_name(f)), cells[0], cells[1], cells[2],
               Table::num(ratio, 2)});
    // Policies differ by constants only.
    verdict.check(ratio < 2.0, std::string(family_name(f)) +
                                   " arbitration changes constants only");
  }
  t.print(std::cout);

  // --- arbitration does not move the mesh exponent -------------------------
  std::cout << "\nFitted beta exponent of Mesh2 per policy (paper: 0.5):\n\n";
  Table t2({"policy", "fitted exponent"});
  for (Arbitration arb : {Arbitration::kFarthestFirst, Arbitration::kFifo,
                          Arbitration::kRandom}) {
    std::vector<double> ns, rates;
    for (std::uint32_t side : {8u, 16u, 32u, 64u}) {
      const Machine m = make_mesh({side, side});
      ThroughputOptions opt;
      opt.arbitration = arb;
      opt.trials = 2;
      ns.push_back(static_cast<double>(side) * side);
      rates.push_back(measure_beta_simulated(m, rng, opt));
    }
    const PowerFit fit = fit_power(ns, rates);
    t2.add_row({arbitration_name(arb), Table::num(fit.exponent, 3)});
    verdict.check(std::abs(fit.exponent - 0.5) < 0.15,
                  std::string(arbitration_name(arb)) + " exponent");
  }
  t2.print(std::cout);

  // --- partition strategy in the emulation engine --------------------------
  std::cout << "\nEmulation slowdown (Mesh2(1024) guest on Mesh2(64) host) "
               "per partitioner:\n\n";
  Table t3({"partitioner", "slowdown", "comm fraction"});
  const Machine guest = make_mesh({32, 32});
  const Machine host = make_mesh({8, 8});
  double s_block = 0, s_random = 0;
  for (auto strat : {PartitionStrategy::kBlock, PartitionStrategy::kBfs,
                     PartitionStrategy::kMatched, PartitionStrategy::kRandom}) {
    EmulationOptions opt;
    opt.guest_steps = 2;
    opt.partition = strat;
    const EmulationResult r = emulate(guest, host, rng, opt);
    if (strat == PartitionStrategy::kBlock) s_block = r.slowdown;
    if (strat == PartitionStrategy::kRandom) s_random = r.slowdown;
    t3.add_row({partition_strategy_name(strat), Table::num(r.slowdown, 2),
                Table::num(r.comm_fraction, 2)});
  }
  t3.print(std::cout);
  verdict.check(s_random > s_block,
                "random placement costs more than locality-preserving");
  // The theory lower bound holds regardless of partitioner: n/m = 16.
  verdict.check(s_block >= 16.0, "load bound holds under block partition");

  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
