// Reproduces Figure 1: communication-induced vs load-induced slowdown as
// the host size varies, for the paper's running example — de Bruijn guest
// on 2-dimensional mesh hosts.
//
// Two theory curves are printed per host size m:
//   T_load = |G|/m            (linear upper-bound scaling)
//   S_comm = β(G)/β(H(m))     (bandwidth lower bound)
// Their crossing is the smallest achievable slowdown / largest efficient
// host, predicted at m* = Θ(lg² |G|).  A measured emulation series at small
// scale brackets the curves from above.

#include <cmath>

#include "bench_common.hpp"
#include "netemu/bandwidth/asymptotic.hpp"
#include "netemu/emulation/bounds.hpp"
#include "netemu/emulation/engine.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header("Figure 1: load-bound vs bandwidth-bound crossover");
  Verdict verdict;

  const double n = 1 << 20;
  std::cout << "Guest: DeBruijn, |G| = 2^20.  Host: Mesh2 of size m.\n\n";
  Table theory({"m", "T_load = n/m", "S_comm = beta(G)/beta(H)",
                "binding bound"});
  double crossover_m = 0;
  for (double m = 4; m <= n; m *= 4) {
    const SlowdownBounds b =
        slowdown_bounds(Family::kDeBruijn, 1, n, Family::kMesh, 2, m);
    if (crossover_m == 0 && b.bandwidth >= b.load) crossover_m = m;
    theory.add_row({Table::num(m, 0), Table::num(b.load, 1),
                    Table::num(b.bandwidth, 1),
                    b.load >= b.bandwidth ? "load" : "bandwidth"});
  }
  theory.print(std::cout);

  // Figure 1's picture: the linear load curve against the bandwidth curve.
  {
    std::vector<double> ms;
    std::vector<double> load_curve, comm_curve;
    for (double m = 4; m <= n; m *= 4) {
      const SlowdownBounds b =
          slowdown_bounds(Family::kDeBruijn, 1, n, Family::kMesh, 2, m);
      ms.push_back(m);
      load_curve.push_back(b.load);
      comm_curve.push_back(b.bandwidth);
    }
    std::cout << "\n       m (host)  slowdown bounds\n";
    ascii_loglog_chart(ms, {{"T_load = n/m", load_curve},
                            {"S_comm = beta(G)/beta(H)", comm_curve}});
  }

  const HostSizeSolution sol = solve_max_host(
      beta_theory(Family::kDeBruijn), beta_theory(Family::kMesh, 2), n);
  const double lg = std::log2(n);
  std::cout << "\nExact crossover m* = " << Table::num(sol.numeric, 0)
            << "  (" << sol.form.to_string() << ", lg^2 n = "
            << Table::num(lg * lg, 0) << ")\n";
  verdict.check(sol.numeric >= crossover_m / 8 &&
                    sol.numeric <= crossover_m * 8,
                "solver crossover consistent with curve scan");
  // m* should track lg² n within a constant.
  verdict.check(sol.numeric / (lg * lg) > 0.1 &&
                    sol.numeric / (lg * lg) < 10.0,
                "crossover lands at Theta(lg^2 n) scale");

  // --- measured series ------------------------------------------------------
  std::cout << "\nMeasured emulation (DeBruijn(1024) guest, Mesh2 hosts):\n\n";
  Prng rng(13);
  const Machine guest = make_debruijn(10);
  Table measured({"m", "measured S", "max(T_load, S_comm) (theory, Omega)"});
  bool all_above = true;
  for (std::uint32_t side : {2u, 4u, 8u, 16u, 32u}) {
    const Machine host = make_mesh({side, side});
    EmulationOptions opt;
    opt.guest_steps = 2;
    const EmulationResult r = emulate(guest, host, rng, opt);
    const SlowdownBounds b = slowdown_bounds(
        Family::kDeBruijn, 1, 1024.0, Family::kMesh, 2,
        static_cast<double>(host.graph.num_vertices()));
    measured.add_row({Table::integer(side * side),
                      Table::num(r.slowdown, 1),
                      Table::num(b.combined, 1)});
    // Ω-bound with 4x constant slack.
    if (r.slowdown * 4.0 < b.combined) all_above = false;
  }
  measured.print(std::cout);
  verdict.check(all_above,
                "measured slowdown sits above the Omega lower bound");

  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
