// google-benchmark microbenchmarks of the simulator kernels themselves:
// BFS, router path generation, packet-simulation ticks, KL bisection,
// Fiedler iteration.  These time the *infrastructure*, not the paper's
// claims; they exist so performance regressions in the kernels are visible.

#include <benchmark/benchmark.h>

#include "netemu/cut/bisection.hpp"
#include "netemu/cut/spectral.hpp"
#include "netemu/graph/algorithms.hpp"
#include "netemu/routing/bfs_router.hpp"
#include "netemu/routing/packet_sim.hpp"
#include "netemu/routing/throughput.hpp"
#include "netemu/topology/generators.hpp"

namespace {

using namespace netemu;

void BM_BfsDistances(benchmark::State& state) {
  const Machine m = make_mesh({static_cast<std::uint32_t>(state.range(0)),
                               static_cast<std::uint32_t>(state.range(0))});
  Vertex src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_distances(m.graph, src));
    src = (src + 7) % m.graph.num_vertices();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.graph.num_vertices()));
}
BENCHMARK(BM_BfsDistances)->Arg(16)->Arg(32)->Arg(64);

void BM_RouterPath(benchmark::State& state) {
  Prng rng(1);
  const Machine m = make_debruijn(static_cast<unsigned>(state.range(0)));
  const auto router = make_default_router(m);
  const std::size_t n = m.graph.num_vertices();
  for (auto _ : state) {
    const Vertex u = static_cast<Vertex>(rng.below(n));
    const Vertex v = static_cast<Vertex>(rng.below(n));
    benchmark::DoNotOptimize(router->route(u, v, rng));
  }
}
BENCHMARK(BM_RouterPath)->Arg(8)->Arg(12);

void BM_BfsRouterCachedPath(benchmark::State& state) {
  Prng rng(2);
  const Machine m = make_ccc(static_cast<unsigned>(state.range(0)));
  BfsRouter router(m);
  const std::size_t n = m.graph.num_vertices();
  // Warm one destination so steady-state path walks are measured.
  router.route(0, static_cast<Vertex>(n - 1), rng);
  for (auto _ : state) {
    const Vertex u = static_cast<Vertex>(rng.below(n));
    benchmark::DoNotOptimize(router.route(u, static_cast<Vertex>(n - 1), rng));
  }
}
BENCHMARK(BM_BfsRouterCachedPath)->Arg(6)->Arg(8);

void BM_PacketBatch(benchmark::State& state) {
  Prng rng(3);
  const auto side = static_cast<std::uint32_t>(state.range(0));
  const Machine m = make_mesh({side, side});
  const std::size_t n = m.graph.num_vertices();
  std::vector<Vertex> procs(n);
  for (std::size_t i = 0; i < n; ++i) procs[i] = static_cast<Vertex>(i);
  const auto traffic = TrafficDistribution::symmetric(procs);
  const auto router = make_default_router(m);
  std::vector<std::vector<Vertex>> paths;
  for (const Message& msg : traffic.batch(8 * n, rng)) {
    paths.push_back(router->route(msg.src, msg.dst, rng));
  }
  PacketSimulator sim(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_batch(paths, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(paths.size()));
}
BENCHMARK(BM_PacketBatch)->Arg(8)->Arg(16)->Arg(32);

void BM_KlBisection(benchmark::State& state) {
  Prng rng(4);
  const auto side = static_cast<std::uint32_t>(state.range(0));
  const Machine m = make_mesh({side, side});
  for (auto _ : state) {
    benchmark::DoNotOptimize(kl_bisection(m.graph, rng, 4));
  }
}
BENCHMARK(BM_KlBisection)->Arg(8)->Arg(16);

void BM_Fiedler(benchmark::State& state) {
  Prng rng(5);
  const auto side = static_cast<std::uint32_t>(state.range(0));
  const Machine m = make_mesh({side, side});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fiedler_value(m.graph, rng, 500));
  }
}
BENCHMARK(BM_Fiedler)->Arg(8)->Arg(16);

void BM_ThroughputMeasurement(benchmark::State& state) {
  Prng rng(6);
  const Machine m = make_mesh({16, 16});
  std::vector<Vertex> procs(256);
  for (std::size_t i = 0; i < 256; ++i) procs[i] = static_cast<Vertex>(i);
  const auto traffic = TrafficDistribution::symmetric(procs);
  const auto router = make_default_router(m);
  ThroughputOptions opt;
  opt.trials = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measure_throughput(m, *router, traffic, rng, opt));
  }
}
BENCHMARK(BM_ThroughputMeasurement);

}  // namespace

BENCHMARK_MAIN();
