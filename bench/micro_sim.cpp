// google-benchmark microbenchmarks of the simulator kernels themselves:
// BFS, router path generation, packet-simulation ticks, KL bisection,
// Fiedler iteration.  These time the *infrastructure*, not the paper's
// claims; they exist so performance regressions in the kernels are visible.
//
// Regression-harness mode (docs/PERF.md): `micro_sim --baseline [--out
// BENCH_sim.json] [--reps N] [--smoke] [--threads 1,2,8]` times run_batch
// on fixed topology × arbitration cases, checks that identical seeds give
// identical results at every requested thread count, and writes a
// machine-readable BENCH_sim.json so every PR has a tracked perf
// trajectory.  Exits nonzero on a determinism violation.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "netemu/cut/bisection.hpp"
#include "netemu/cut/spectral.hpp"
#include "netemu/graph/algorithms.hpp"
#include "netemu/routing/bfs_router.hpp"
#include "netemu/routing/packet_sim.hpp"
#include "netemu/routing/throughput.hpp"
#include "netemu/scope/metrics.hpp"
#include "netemu/topology/generators.hpp"
#include "netemu/util/json.hpp"

namespace {

using namespace netemu;

void BM_BfsDistances(benchmark::State& state) {
  const Machine m = make_mesh({static_cast<std::uint32_t>(state.range(0)),
                               static_cast<std::uint32_t>(state.range(0))});
  Vertex src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_distances(m.graph, src));
    src = (src + 7) % m.graph.num_vertices();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.graph.num_vertices()));
}
BENCHMARK(BM_BfsDistances)->Arg(16)->Arg(32)->Arg(64);

void BM_RouterPath(benchmark::State& state) {
  Prng rng(1);
  const Machine m = make_debruijn(static_cast<unsigned>(state.range(0)));
  const auto router = make_default_router(m);
  const std::size_t n = m.graph.num_vertices();
  for (auto _ : state) {
    const Vertex u = static_cast<Vertex>(rng.below(n));
    const Vertex v = static_cast<Vertex>(rng.below(n));
    benchmark::DoNotOptimize(router->route(u, v, rng));
  }
}
BENCHMARK(BM_RouterPath)->Arg(8)->Arg(12);

void BM_BfsRouterCachedPath(benchmark::State& state) {
  Prng rng(2);
  const Machine m = make_ccc(static_cast<unsigned>(state.range(0)));
  BfsRouter router(m);
  const std::size_t n = m.graph.num_vertices();
  // Warm one destination so steady-state path walks are measured.
  router.route(0, static_cast<Vertex>(n - 1), rng);
  for (auto _ : state) {
    const Vertex u = static_cast<Vertex>(rng.below(n));
    benchmark::DoNotOptimize(router.route(u, static_cast<Vertex>(n - 1), rng));
  }
}
BENCHMARK(BM_BfsRouterCachedPath)->Arg(6)->Arg(8);

void BM_PacketBatch(benchmark::State& state) {
  Prng rng(3);
  const auto side = static_cast<std::uint32_t>(state.range(0));
  const Machine m = make_mesh({side, side});
  const std::size_t n = m.graph.num_vertices();
  std::vector<Vertex> procs(n);
  for (std::size_t i = 0; i < n; ++i) procs[i] = static_cast<Vertex>(i);
  const auto traffic = TrafficDistribution::symmetric(procs);
  const auto router = make_default_router(m);
  std::vector<std::vector<Vertex>> paths;
  for (const Message& msg : traffic.batch(8 * n, rng)) {
    paths.push_back(router->route(msg.src, msg.dst, rng));
  }
  PacketSimulator sim(m);
  const auto batch = sim.prepare(paths);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_batch(batch, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(paths.size()));
}
BENCHMARK(BM_PacketBatch)->Arg(8)->Arg(16)->Arg(32);

void BM_KlBisection(benchmark::State& state) {
  Prng rng(4);
  const auto side = static_cast<std::uint32_t>(state.range(0));
  const Machine m = make_mesh({side, side});
  for (auto _ : state) {
    benchmark::DoNotOptimize(kl_bisection(m.graph, rng, 4));
  }
}
BENCHMARK(BM_KlBisection)->Arg(8)->Arg(16);

void BM_Fiedler(benchmark::State& state) {
  Prng rng(5);
  const auto side = static_cast<std::uint32_t>(state.range(0));
  const Machine m = make_mesh({side, side});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fiedler_value(m.graph, rng, 500));
  }
}
BENCHMARK(BM_Fiedler)->Arg(8)->Arg(16);

void BM_ThroughputMeasurement(benchmark::State& state) {
  Prng rng(6);
  const Machine m = make_mesh({16, 16});
  std::vector<Vertex> procs(256);
  for (std::size_t i = 0; i < 256; ++i) procs[i] = static_cast<Vertex>(i);
  const auto traffic = TrafficDistribution::symmetric(procs);
  const auto router = make_default_router(m);
  ThroughputOptions opt;
  opt.trials = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measure_throughput(m, *router, traffic, rng, opt));
  }
}
BENCHMARK(BM_ThroughputMeasurement);

// ---------------------------------------------------------------------------
// Regression-harness ("--baseline") mode.
// ---------------------------------------------------------------------------

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

std::vector<std::vector<Vertex>> baseline_paths(const Machine& m,
                                                std::size_t count,
                                                std::uint64_t seed) {
  Prng rng(seed);
  BfsRouter router(m, /*spread=*/true);
  const std::size_t n = m.graph.num_vertices();
  std::vector<std::vector<Vertex>> paths;
  paths.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex src = static_cast<Vertex>(rng.below(n));
    const Vertex dst = static_cast<Vertex>(rng.below(n));
    paths.push_back(router.route(src, dst, rng));
  }
  return paths;
}

/// Time run_batch on one topology × arbitration case.
Json run_case(const char* topo_name, const Machine& machine, Arbitration arb,
              int reps) {
  const std::size_t n = machine.graph.num_vertices();
  const auto paths = baseline_paths(machine, 8 * n, 999);
  const PacketSimulator sim(machine, arb);
  const auto batch = sim.prepare(paths);

  std::vector<double> wall_ms;
  wall_ms.reserve(static_cast<std::size_t>(reps));
  BatchStats stats;
  double total_s = 0.0;
  for (int r = 0; r < reps; ++r) {
    Prng rng(777);  // per-rep reset: every rep simulates identical work
    const auto t0 = SteadyClock::now();
    stats = sim.run_batch(batch, rng);
    const double s = seconds_since(t0);
    wall_ms.push_back(s * 1e3);
    total_s += s;
  }

  const double ticks = static_cast<double>(stats.makespan);
  const double reps_d = static_cast<double>(reps);
  Json c = Json::object();
  c["topology"] = topo_name;
  c["arbitration"] = arbitration_name(arb);
  c["vertices"] = n;
  c["messages"] = paths.size();
  c["makespan"] = stats.makespan;
  c["rate"] = stats.rate();
  c["wall_ms_p50"] = scope::exact_quantile(wall_ms, 0.50);
  c["wall_ms_p95"] = scope::exact_quantile(wall_ms, 0.95);
  c["ticks_per_sec"] = ticks * reps_d / total_s;
  // The headline work metric: simulated message-ticks per wall second.
  c["msg_ticks_per_sec"] =
      ticks * static_cast<double>(paths.size()) * reps_d / total_s;
  return c;
}

struct TrialRun {
  std::vector<double> rates;
  BatchStats last;
  double wall_s = 0.0;
};

TrialRun run_estimate(const Machine& machine, unsigned trials,
                      std::size_t threads) {
  ThreadPool pool(threads);
  BfsRouter router(machine, /*spread=*/true);
  std::vector<Vertex> procs(machine.graph.num_vertices());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    procs[i] = static_cast<Vertex>(i);
  }
  const auto traffic = TrafficDistribution::symmetric(std::move(procs));
  ThroughputOptions opt;
  opt.trials = trials;
  opt.pool = &pool;
  Prng rng(4242);
  const auto t0 = SteadyClock::now();
  const ThroughputResult r =
      measure_throughput(machine, router, traffic, rng, opt);
  TrialRun out;
  out.wall_s = seconds_since(t0);
  out.rates = r.trial_rates;
  out.last = r.last;
  return out;
}

int run_baseline(const std::string& out_path, int reps, bool smoke,
                 const std::vector<std::size_t>& thread_counts) {
  Json doc = Json::object();
  doc["schema"] = "netemu-bench-sim/1";
  doc["smoke"] = smoke;

  struct Topo {
    const char* name;
    Machine machine;
  };
  std::vector<Topo> topos;
  if (smoke) {
    topos.push_back({"mesh16x16", make_mesh({16, 16})});
    topos.push_back({"butterfly4", make_butterfly(4)});
    topos.push_back({"tree7", make_tree(7)});
  } else {
    topos.push_back({"mesh32x32", make_mesh({32, 32})});
    topos.push_back({"butterfly6", make_butterfly(6)});
    topos.push_back({"tree9", make_tree(9)});
  }

  Json cases = Json::array();
  const Arbitration arbs[] = {Arbitration::kFarthestFirst, Arbitration::kFifo,
                              Arbitration::kRandom};
  for (const Topo& t : topos) {
    for (const Arbitration a : arbs) {
      cases.items().push_back(run_case(t.name, t.machine, a, reps));
      std::fprintf(stderr, "baseline: %s/%s done\n", t.name,
                   arbitration_name(a));
    }
  }
  doc["run_batch"] = std::move(cases);

  // Determinism: a multi-trial estimate must be bit-identical at every
  // thread count (the acceptance gate CI enforces).
  const Machine& det_machine = topos.front().machine;
  const unsigned det_trials = 8;
  bool deterministic = true;
  Json det = Json::object();
  Json det_threads = Json::array();
  TrialRun reference;
  Json scaling = Json::object();
  std::vector<double> best_wall(thread_counts.size(), 0.0);
  // Timing discipline for a shared/CI box: run a few reps of every thread
  // count, interleaved (so slowly-drifting background load penalizes all
  // counts alike instead of whichever ran last), and keep each count's
  // fastest wall — a single timing is too noisy to gate a speedup ratio on.
  const int scale_reps = smoke ? 2 : 3;
  for (int rep = 0; rep < scale_reps; ++rep) {
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      const std::size_t threads = thread_counts[i];
      TrialRun run = run_estimate(det_machine, det_trials, threads);
      if (rep == 0 || run.wall_s < best_wall[i]) best_wall[i] = run.wall_s;
      if (rep > 0) continue;
      det_threads.items().emplace_back(threads);
      if (i == 0) {
        reference = std::move(run);
        continue;
      }
      if (run.rates != reference.rates || !(run.last == reference.last)) {
        deterministic = false;
        std::fprintf(
            stderr, "DETERMINISM VIOLATION: %zu threads disagrees with %zu\n",
            threads, thread_counts[0]);
      }
    }
  }
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "wall_s_threads_%zu", thread_counts[i]);
    scaling[key] = best_wall[i];
  }
  // Parallel efficiency relative to the first (serial) thread count.  The
  // CI bench-smoke job gates speedup_threads_8 >= 1.0: more worker threads
  // must never make an estimate slower (on a 1-core box the pool degrades
  // to the serial loop, so the ratio sits at ~1.0 there too).
  for (std::size_t i = 1; i < thread_counts.size(); ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "speedup_threads_%zu", thread_counts[i]);
    scaling[key] = best_wall[i] > 0.0 ? best_wall[0] / best_wall[i] : 0.0;
  }
  det["ok"] = deterministic;
  det["threads"] = std::move(det_threads);
  det["trials"] = det_trials;
  Json ref_rates = Json::array();
  for (const double r : reference.rates) ref_rates.items().emplace_back(r);
  det["trial_rates"] = std::move(ref_rates);
  doc["determinism"] = std::move(det);
  doc["estimate_scaling"] = std::move(scaling);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << doc.dump() << "\n";
  std::fprintf(stderr, "baseline: wrote %s (determinism %s)\n",
               out_path.c_str(), deterministic ? "ok" : "VIOLATED");
  return deterministic ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool baseline = false;
  std::string out_path = "BENCH_sim.json";
  int reps = 15;
  bool smoke = false;
  std::vector<std::size_t> thread_counts = {1, 2, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      baseline = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      thread_counts.clear();
      const char* p = argv[++i];
      while (*p) {
        char* end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p) break;
        if (v > 0) thread_counts.push_back(static_cast<std::size_t>(v));
        p = (*end == ',') ? end + 1 : end;
      }
    }
  }
  if (baseline) {
    if (reps < 3) reps = 3;
    if (thread_counts.empty()) thread_counts = {1, 2, 8};
    return run_baseline(out_path, reps, smoke, thread_counts);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
