// Reproduces Theorem 6: the operational bandwidth (simulated delivery rate
// under symmetric traffic) coincides, up to constants, with the
// graph-theoretic bandwidth E(T)/C(H,T) and with the cut/flux upper bounds.
// For each family the three estimators must agree within a bounded ratio.

#include "bench_common.hpp"
#include "netemu/bandwidth/empirical.hpp"
#include "netemu/embedding/congestion_witness.hpp"
#include "netemu/traffic/traffic_graph.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header(
      "Theorem 6: operational beta == graph-theoretic beta (per family)");
  Prng rng(23);
  Verdict verdict;

  Table t({"machine", "n", "beta-hat (sim)", "E(T)/C(H,T)", "2*bisection",
           "E/avgdist", "sim/graph", "verdict"});

  for (Family f : all_families()) {
    const unsigned k = family_is_dimensional(f) ? 2 : 1;
    const Machine m = make_machine(f, 256, k, rng);

    BetaMeasureOptions opt;
    opt.throughput.trials = 2;
    const BetaBounds bounds = measure_beta(m, rng, opt);

    // Graph-theoretic side: K_n on the processor set, shortest-path witness.
    std::vector<Vertex> procs;
    for (std::size_t i = 0; i < m.num_processors(); ++i) {
      procs.push_back(m.processor(i));
    }
    const Multigraph kn =
        symmetric_traffic_graph(m.graph.num_vertices(), procs);
    const CongestionWitness w = congestion_witness(m, kn, rng);

    const double ratio = w.beta_graph > 0 ? bounds.simulated / w.beta_graph
                                          : 0.0;
    // Theorem 6's Θ: the simulated rate tracks E(T)/C within a constant.
    // Weak machines (node-capped) sit below the wire-only witness, so the
    // acceptance window is one-sided wider there.
    const bool weak = !m.forward_cap.empty();
    const bool ok = ratio > (weak ? 0.1 : 0.25) && ratio < 6.0;
    verdict.check(ok, m.name + " sim/graph ratio " + Table::num(ratio, 2));
    t.add_row({m.name, Table::integer((long long)m.graph.num_vertices()),
               Table::num(bounds.simulated, 2), Table::num(w.beta_graph, 2),
               Table::num(bounds.cut_upper, 1),
               Table::num(bounds.flux_upper, 1), Table::num(ratio, 2),
               ok ? "PASS" : "CHECK"});
  }
  t.print(std::cout);

  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
