// scope_overhead: the <2% instrumentation gate (docs/SCOPE.md).
//
// netemu::scope is compiled-in everywhere — the tick-loop batch counters in
// packet_sim, the request/cache/histogram recording in the executor — so
// this harness proves the recording sites are cheap enough to leave on.
// It A/B-times the two hot paths the ISSUE names with instrumentation
// enabled vs. disabled (scope::set_enabled is the global kill switch that
// turns every record into a single relaxed load):
//
//   run_batch   — the micro_sim workload: repeated packet-simulation
//                 batches on a fixed mesh (counter adds per *batch*);
//   cache_hit   — the service_throughput hot phase: an in-process Server
//                 on an ephemeral port, one client connection replaying a
//                 fully-cached query through the real localhost socket
//                 (JSON parse -> query build -> executor cache hit ->
//                 response serialize per request, exactly the stack the
//                 hot phase's req/s measures).
//
// A third A/B gates cooperative cancellation the same way (docs/
// LIFECYCLE.md): run_batch with a null CancelToken (one pointer compare at
// each quantum boundary) vs an armed-but-never-firing one (the full
// deadline-latch check).  Both must stay within the 2% gate.
//
// A fourth A/B gates the overload guard (docs/GUARD.md): the same
// request stack driven through a guard-enabled executor vs a guard-less
// one, on refresh queries so every request walks the admission path
// (cost model, token bucket, fair scheduler, AIMD bookkeeping) instead
// of short-circuiting at the cache.  An uncontended guard must be free
// enough to leave on.
//
// Methodology: R PAIRED rounds — each pair runs both arms back-to-back
// (order alternating per pair, so drift cancels) and yields one
// enabled/disabled ratio; the statistic is the MEDIAN of the pair ratios.
// Pairing matters: adjacent rounds share the machine's frequency/cache
// state, so each ratio is clean even when absolute round times wander,
// and the median discards the odd preempted pair.  Rounds are timed on
// PROCESS CPU TIME (CLOCK_PROCESS_CPUTIME_ID), not wall time — it
// charges both the client and server side of every request while
// ignoring socket scheduling delays, which on shared CI runners are far
// larger than the 2% signal.  Overhead = median ratio - 1, gated at 2%.
//
//   $ scope_overhead            # full sizes
//   $ scope_overhead --smoke    # CI sizes (same 2% gate)
//
// Exits nonzero when either workload exceeds the gate.

#include <ctime>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "netemu/routing/bfs_router.hpp"
#include "netemu/routing/packet_sim.hpp"
#include "netemu/scope/metrics.hpp"
#include "netemu/service/client.hpp"
#include "netemu/service/executor.hpp"
#include "netemu/service/query.hpp"
#include "netemu/service/server.hpp"
#include "netemu/topology/generators.hpp"
#include "netemu/util/table.hpp"

namespace {

using namespace netemu;
using SteadyClock = std::chrono::steady_clock;

constexpr double kGatePercent = 2.0;

/// CPU seconds consumed by the whole process (falls back to wall time
/// where the clock is unavailable).  Idle threads — the executor pool and
/// the server acceptor blocked between requests — contribute nothing.
double process_cpu_s() {
#ifdef CLOCK_PROCESS_CPUTIME_ID
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return std::chrono::duration<double>(
             SteadyClock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Workload 1: run_batch (micro_sim's hot loop).
// ---------------------------------------------------------------------------

struct SimWorkload {
  Machine machine;
  PacketSimulator sim;
  PacketSimulator::PreparedBatch batch;

  SimWorkload(std::uint32_t side, std::size_t messages_per_proc)
      : machine(make_mesh({side, side})), sim(machine) {
    Prng rng(999);
    BfsRouter router(machine, /*spread=*/true);
    const std::size_t n = machine.graph.num_vertices();
    std::vector<std::vector<Vertex>> paths;
    paths.reserve(messages_per_proc * n);
    for (std::size_t i = 0; i < messages_per_proc * n; ++i) {
      const Vertex src = static_cast<Vertex>(rng.below(n));
      const Vertex dst = static_cast<Vertex>(rng.below(n));
      paths.push_back(router.route(src, dst, rng));
    }
    batch = sim.prepare(paths);
  }

  double round(int reps) const { return round(reps, CancelToken()); }

  double round(int reps, const CancelToken& cancel) const {
    const double t0 = process_cpu_s();
    for (int r = 0; r < reps; ++r) {
      Prng rng(777);  // identical work every rep
      BatchStats stats = sim.run_batch(batch, rng, cancel);
      (void)stats;
    }
    return process_cpu_s() - t0;
  }
};

// ---------------------------------------------------------------------------
// Workload 2: executor cache hits (service_throughput's steady state).
// ---------------------------------------------------------------------------

struct ExecWorkload {
  QueryExecutor executor;
  Server server;
  Client client;
  std::string line;
  bool up = false;

  ExecWorkload() : ExecWorkload(false) {}

  explicit ExecWorkload(bool guard_on)
      : executor(make_options(guard_on)), server(executor, server_options()) {
    Query q;
    q.kind = QueryKind::kBandwidth;
    q.family = Family::kButterfly;
    q.n = 1024.0;
    line = query_to_json(q).dump();
    q.refresh = true;  // forces the full admission + compute path
    refresh_line = query_to_json(q).dump();
    std::string error;
    if (!server.start(&error) || !client.connect(server.port(), &error)) {
      std::fprintf(stderr, "scope_overhead: %s\n", error.c_str());
      return;
    }
    // Warm the cache: the first request computes, every timed one hits.
    std::string warm;
    up = client.request_raw(line, warm) &&
         warm.find("\"ok\":true") != std::string::npos;
    if (!up) {
      std::fprintf(stderr, "scope_overhead: warmup request failed: %s\n",
                   warm.c_str());
    }
  }

  ~ExecWorkload() { server.stop(); }

  static QueryExecutor::Options make_options(bool guard_on) {
    QueryExecutor::Options o;
    o.threads = 2;
    o.cache_file.clear();  // memory-only: no disk noise in the loop
    o.compute = [](const Query&, const CancelToken&) {
      Json j = Json::object();
      j["v"] = 1.0;
      return j;
    };
    // Guard arm: defaults (auto budget, no rate limit) — an uncontended
    // serial client must never be shed or browned out here.
    o.guard.enabled = guard_on;
    return o;
  }

  static Server::Options server_options() {
    Server::Options o;
    o.port = 0;  // ephemeral
    return o;
  }

  double round(int iters) {
    std::string response;
    const double t0 = process_cpu_s();
    for (int i = 0; i < iters; ++i) {
      if (!client.request_raw(line, response) ||
          response.find("\"cache_hit\":true") == std::string::npos) {
        std::fprintf(stderr, "scope_overhead: request failed mid-round\n");
        return 1e300;  // poison the round, never the min
      }
    }
    return process_cpu_s() - t0;
  }

  /// Like round(), but on refresh queries: every request registers a
  /// flight, passes admission (the guard, when enabled), and computes.
  double round_refresh(int iters) {
    std::string response;
    const double t0 = process_cpu_s();
    for (int i = 0; i < iters; ++i) {
      if (!client.request_raw(refresh_line, response) ||
          response.find("\"ok\":true") == std::string::npos) {
        std::fprintf(stderr, "scope_overhead: refresh failed mid-round\n");
        return 1e300;  // poison the round, never the min
      }
    }
    return process_cpu_s() - t0;
  }

  std::string refresh_line;
};

// ---------------------------------------------------------------------------
// A/B harness.
// ---------------------------------------------------------------------------

struct ArmResult {
  std::vector<double> enabled_s;   // per pair
  std::vector<double> disabled_s;  // per pair

  double median_enabled_s() const { return scope::exact_quantile(enabled_s, 0.5); }
  double median_disabled_s() const {
    return scope::exact_quantile(disabled_s, 0.5);
  }
  double overhead_percent() const {
    std::vector<double> ratios;
    ratios.reserve(enabled_s.size());
    for (std::size_t i = 0; i < enabled_s.size(); ++i) {
      ratios.push_back(enabled_s[i] / disabled_s[i]);
    }
    return (scope::exact_quantile(std::move(ratios), 0.5) - 1.0) * 100.0;
  }
};

/// Run `pairs` back-to-back (on, off) timings, alternating arm order each
/// pair; `set_arm(on)` selects which arm the next round runs.
template <typename SetArm, typename RoundFn>
ArmResult ab_pairs_with(int pairs, SetArm&& set_arm, RoundFn&& run_round) {
  ArmResult out;
  for (int r = 0; r < pairs; ++r) {
    const bool enabled_first = (r % 2 == 0);
    for (int pass = 0; pass < 2; ++pass) {
      const bool on = (pass == 0) == enabled_first;
      set_arm(on);
      const double s = run_round();
      (on ? out.enabled_s : out.disabled_s).push_back(s);
    }
  }
  return out;
}

/// The scope-instrumentation arm pair (set_enabled is the kill switch).
template <typename RoundFn>
ArmResult ab_pairs(int pairs, RoundFn&& run_round) {
  ArmResult out = ab_pairs_with(
      pairs, [](bool on) { scope::set_enabled(on); }, run_round);
  scope::set_enabled(true);  // never leave the process dark
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // Many SHORT pairs beat few long ones on a contended machine: a few ms
  // per slice keeps the two arms of a pair tightly correlated (same
  // frequency, same cache pressure), and the median over dozens of pair
  // ratios discards the preempted outliers.  Slices stay well above CPU
  // timer granularity (~1 us).
  const int sim_reps = smoke ? 20 : 4;
  const int exec_iters = smoke ? 500 : 1000;
  const int rounds = smoke ? 40 : 60;

  std::printf("==== scope_overhead: instrumentation A/B (gate %.1f%%) ====\n",
              kGatePercent);
  std::printf("mode: %s (%d paired rounds, median of pair ratios)\n\n",
              smoke ? "smoke" : "full", rounds);

  SimWorkload sim(smoke ? 12u : 24u, 8);
  ExecWorkload exec;
  ExecWorkload guard_on(true), guard_off(false);
  if (!exec.up || !guard_on.up || !guard_off.up) return 2;
  // Untimed warmup round per workload: page in code + data.
  (void)sim.round(smoke ? 10 : 2);
  (void)exec.round(500);
  (void)guard_on.round_refresh(200);
  (void)guard_off.round_refresh(200);

  // A failing first reading is usually a burst of machine noise, not real
  // overhead: escalate by pooling more pairs (up to 3 batches) — noise
  // dilutes toward zero across batches, genuine overhead reproduces in
  // every one.
  const auto measure_by = [&](auto&& run_batch_of_pairs) {
    ArmResult r = run_batch_of_pairs();
    for (int batch = 1; batch < 3 && r.overhead_percent() > kGatePercent;
         ++batch) {
      std::printf("  reading %.2f%% over gate; pooling another %d pairs\n",
                  r.overhead_percent(), rounds);
      const ArmResult more = run_batch_of_pairs();
      r.enabled_s.insert(r.enabled_s.end(), more.enabled_s.begin(),
                         more.enabled_s.end());
      r.disabled_s.insert(r.disabled_s.end(), more.disabled_s.begin(),
                          more.disabled_s.end());
    }
    return r;
  };
  const auto measure = [&](auto&& run_round) {
    return measure_by([&] { return ab_pairs(rounds, run_round); });
  };
  const ArmResult sim_r = measure([&] { return sim.round(sim_reps); });
  const ArmResult exec_r = measure([&] { return exec.round(exec_iters); });

  // Cancellation arm pair: armed-but-never-firing token vs null token on
  // the same batch.  The armed arm takes the real deadline-latch branch at
  // every quantum boundary; the null arm is one pointer compare.
  CancelSource cancel_source;
  cancel_source.set_deadline_after_ms(3'600'000);
  const CancelToken armed = cancel_source.token();
  CancelToken current;  // the token the next round passes to run_batch
  const ArmResult cancel_r = measure_by([&] {
    return ab_pairs_with(
        rounds, [&](bool on) { current = on ? armed : CancelToken(); },
        [&] { return sim.round(sim_reps, current); });
  });

  // Guard arm pair: the same refresh workload against a guard-enabled
  // executor vs a guard-less one.  "Enabled" here means the guard config,
  // not the scope kill switch.
  ExecWorkload* guard_arm = &guard_off;
  const int guard_iters = exec_iters / 2;  // refresh rounds compute per hit
  const ArmResult guard_r = measure_by([&] {
    return ab_pairs_with(
        rounds, [&](bool on) { guard_arm = on ? &guard_on : &guard_off; },
        [&] { return guard_arm->round_refresh(guard_iters); });
  });

  Table table({"workload", "off ms", "on ms", "overhead", "gate"});
  int failures = 0;
  const auto row = [&](const char* name, const ArmResult& r) {
    const double pct = r.overhead_percent();
    const bool ok = pct <= kGatePercent;
    if (!ok) ++failures;
    table.add_row({name, Table::num(r.median_disabled_s() * 1e3, 2),
                   Table::num(r.median_enabled_s() * 1e3, 2),
                   Table::num(pct, 2) + "%", ok ? "PASS" : "FAIL"});
  };
  row("run_batch (micro_sim)", sim_r);
  row("cache_hit (service_throughput)", exec_r);
  row("run_batch cancel token", cancel_r);
  row("refresh overload guard", guard_r);
  table.print(std::cout);

  if (failures != 0) {
    std::printf("\nFAIL: instrumentation overhead exceeds %.1f%% on %d "
                "workload(s)\n",
                kGatePercent, failures);
    return 1;
  }
  std::printf("\nPASS: scope recording, cancel-check, and guard admission "
              "sites cost <= %.1f%% on every hot path\n",
              kGatePercent);
  return 0;
}
