// service_throughput: hammer the planner daemon through its real localhost
// socket with a mixed query workload and report requests/sec and cache hit
// rate.  Three phases:
//
//   cold  — every distinct query once (fills the cache; measures compute)
//   hot   — C client connections replay the same queries for R total
//           requests (fully cached; measures the serving stack itself)
//   mixed — hot replay with a twist: every 8th request is a fresh
//           cache-missing bandwidth query (steady-state daemon traffic)
//
// Shape checks (exit nonzero on failure): every response ok, the hot phase
// is 100% cache hits, and hot throughput >= 10k req/s.

#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "netemu/service/client.hpp"
#include "netemu/service/server.hpp"
#include "netemu/util/cli.hpp"
#include "netemu/util/json.hpp"
#include "netemu/util/table.hpp"

using namespace netemu;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::string> build_workload() {
  std::vector<std::string> lines;
  // Theory queries across the whole family registry.
  for (Family f : all_families()) {
    Json q = Json::object();
    q["op"] = "bandwidth";
    q["family"] = family_name(f);
    q["n"] = 4096;
    if (family_is_dimensional(f)) q["k"] = 2;
    lines.push_back(q.dump());
  }
  // Tables 1-3 style solver queries.
  const char* pairs[][2] = {{"DeBruijn", "mesh2"},   {"Butterfly", "mesh1"},
                            {"Hypercube", "mesh3"},  {"Tree", "LinearArray"},
                            {"ShuffleExchange", "pyramid2"}};
  for (const auto& pair : pairs) {
    Json q = Json::object();
    q["op"] = "max_host";
    q["guest"] = pair[0];
    q["host"] = pair[1];
    q["n"] = 1048576;
    lines.push_back(q.dump());
    Json b = Json::object();
    b["op"] = "bounds";
    b["guest"] = pair[0];
    b["host"] = pair[1];
    b["n"] = 1048576;
    lines.push_back(b.dump());
  }
  // Simulation queries (small instances: the cold phase runs them once).
  const char* sim_families[] = {"Butterfly", "Hypercube", "mesh2", "Tree"};
  for (const char* f : sim_families) {
    Json q = Json::object();
    q["op"] = "estimate";
    q["family"] = f;
    q["n"] = 64;
    q["seed"] = 42;
    q["trials"] = 1;
    lines.push_back(q.dump());
  }
  return lines;
}

struct PhaseResult {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  double secs = 0.0;
  double rps() const { return secs > 0 ? double(requests) / secs : 0.0; }
};

/// Replay `lines` round-robin across `clients` connections for `total`
/// requests.  fresh_every > 0 inserts a unique uncached query every N-th
/// request (the "mixed" phase).
PhaseResult run_phase(std::uint16_t port, const std::vector<std::string>& lines,
                      std::size_t clients, std::uint64_t total,
                      std::uint64_t fresh_every) {
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> failures(clients, 0);
  const auto start = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.connect(port)) {
        failures[c] = total;  // count the whole share as failed
        return;
      }
      std::string response;
      const std::uint64_t share = total / clients + (c < total % clients);
      for (std::uint64_t i = 0; i < share; ++i) {
        if (fresh_every > 0 && i % fresh_every == fresh_every - 1) {
          // A unique size makes a unique content address: guaranteed miss.
          Json q = Json::object();
          q["op"] = "bandwidth";
          q["family"] = "Mesh";
          q["k"] = 2;
          q["n"] = 100000 + static_cast<double>(c) * total + i;
          if (!client.request_raw(q.dump(), response)) ++failures[c];
          continue;
        }
        const std::string& line = lines[(c + i) % lines.size()];
        if (!client.request_raw(line, response)) {
          ++failures[c];
          continue;
        }
        // Cheap shape check without a full parse.
        if (response.find("\"ok\":true") == std::string::npos) ++failures[c];
      }
    });
  }
  for (auto& t : threads) t.join();
  PhaseResult r;
  r.secs = seconds_since(start);
  r.requests = total;
  for (const auto f : failures) r.failures += f;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto clients = static_cast<std::size_t>(cli.get_int("clients", 4));
  const auto total = static_cast<std::uint64_t>(cli.get_int("requests", 40000));

  QueryExecutor::Options exec_options;
  exec_options.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  exec_options.max_queue = 1024;
  QueryExecutor executor(exec_options);

  Server::Options server_options;
  server_options.port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  Server server(executor, server_options);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "service_throughput: " << error << "\n";
    return 1;
  }

  const std::vector<std::string> workload = build_workload();
  std::cout << "daemon on 127.0.0.1:" << server.port() << ", "
            << workload.size() << " distinct queries, " << clients
            << " client connections\n\n";

  const PhaseResult cold =
      run_phase(server.port(), workload, 1, workload.size(), 0);
  const QueryExecutor::Stats after_cold = executor.stats();

  const PhaseResult hot = run_phase(server.port(), workload, clients, total, 0);
  const QueryExecutor::Stats after_hot = executor.stats();
  const std::uint64_t hot_hits = after_hot.cache_hits - after_cold.cache_hits;

  const PhaseResult mixed =
      run_phase(server.port(), workload, clients, total / 2, 8);
  const QueryExecutor::Stats after_mixed = executor.stats();
  const std::uint64_t mixed_hits =
      after_mixed.cache_hits - after_hot.cache_hits;

  server.stop();

  Table t({"phase", "requests", "seconds", "req/s", "hit rate", "failures"});
  const auto hit_rate = [](std::uint64_t hits, std::uint64_t requests) {
    return requests == 0
               ? std::string("-")
               : Table::num(100.0 * double(hits) / double(requests), 1) + "%";
  };
  t.add_row({"cold", Table::integer(std::int64_t(cold.requests)),
             Table::num(cold.secs, 3), Table::num(cold.rps(), 0),
             hit_rate(after_cold.cache_hits, cold.requests),
             Table::integer(std::int64_t(cold.failures))});
  t.add_row({"hot", Table::integer(std::int64_t(hot.requests)),
             Table::num(hot.secs, 3), Table::num(hot.rps(), 0),
             hit_rate(hot_hits, hot.requests),
             Table::integer(std::int64_t(hot.failures))});
  t.add_row({"mixed", Table::integer(std::int64_t(mixed.requests)),
             Table::num(mixed.secs, 3), Table::num(mixed.rps(), 0),
             hit_rate(mixed_hits, mixed.requests),
             Table::integer(std::int64_t(mixed.failures))});
  t.print(std::cout);

  std::cout << "\nexecutor: " << after_mixed.computed << " computed, "
            << after_mixed.cache_hits << " cache hits, "
            << after_mixed.dedup_joins << " dedup joins, "
            << after_mixed.rejected << " rejected\n";

  bench::Verdict verdict;
  verdict.check(cold.failures + hot.failures + mixed.failures == 0,
                "no request failed");
  verdict.check(hot_hits == hot.requests, "hot phase fully cached");
  verdict.check(hot.rps() >= 10000.0, "hot phase >= 10k req/s");
  return verdict.exit_code();
}
