// drain_soak: graceful-drain acceptance for the service lifecycle
// (docs/LIFECYCLE.md).  For each seed it starts THREE real netemu_serve
// backends, fronts them with a FleetRouter, and drives a stream of
// uniquely-addressed queries while a deterministic schedule SIGTERMs
// backends mid-flight — the graceful sibling of fleet_soak's kill -9.
//
// A SIGTERM'd backend must DRAIN, not die: stop accepting, finish or cancel
// in-flight work within its --drain-ms budget, snapshot its cache, and
// exit 0.  Invariants checked per seed (exit nonzero on any failure):
//   * zero lost queries: traffic aimed at a draining backend fails over
//     (the draining executor sheds new flights with an overloaded error);
//   * zero wrong answers: every response echoes the size it asked about;
//   * every drain is CLEAN: exit status 0 — not 128+SIGTERM, not SIGKILL
//     after an overrun grace period;
//   * every drain is FAST: SIGTERM-to-exit under 2 seconds.
//
// Reproduce one seed exactly:  drain_soak --seeds 1 --first-seed <s>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "netemu/faultline/process.hpp"
#include "netemu/fleet/router.hpp"
#include "netemu/util/cli.hpp"
#include "netemu/util/json.hpp"
#include "netemu/util/table.hpp"

using namespace netemu;

namespace {

constexpr std::size_t kBackends = 3;

struct BackendProc {
  std::unique_ptr<ManagedProcess> proc;
  std::uint16_t port = 0;  // pinned after the first (ephemeral) bind
  std::string cache_file;
  bool draining = false;         // SIGTERM sent, exit not yet observed
  bool down = false;             // exited; awaiting restart_at
  std::uint64_t restart_at = 0;  // request index to restart at (when down)
  std::chrono::steady_clock::time_point term_sent;
};

struct SeedResult {
  std::uint64_t seed = 0;
  std::uint64_t requests = 0;
  std::uint64_t unanswered = 0;  ///< lost queries (must be 0)
  std::uint64_t mismatches = 0;  ///< wrong answers (must be 0)
  int terms = 0;                 ///< SIGTERMs delivered
  int clean_exits = 0;           ///< ... that exited with status 0
  double worst_drain_ms = 0.0;   ///< slowest SIGTERM-to-exit
  std::string error;             ///< harness-level failure
  double secs = 0.0;
};

bool start_backend(BackendProc& b, const std::string& serve_bin,
                   std::string* error) {
  b.proc = std::make_unique<ManagedProcess>();
  bench::ServeSpawn spawn;
  spawn.port = b.port;  // 0 on first start
  spawn.cache_file = b.cache_file;
  spawn.extra_args = {"--drain-ms", "1000"};
  if (!bench::spawn_serve(*b.proc, serve_bin, spawn, &b.port, error)) {
    return false;
  }
  b.draining = false;
  b.down = false;
  return true;
}

Json query_for(double n) {
  Json q = Json::object();
  q["op"] = "bandwidth";
  q["family"] = "Mesh";
  q["k"] = 2;
  q["n"] = n;
  return q;
}

SeedResult run_seed(std::uint64_t seed, std::uint64_t total_requests,
                    int terms, const std::string& serve_bin) {
  SeedResult out;
  out.seed = seed;
  out.requests = total_requests;
  const auto start = std::chrono::steady_clock::now();

  std::vector<BackendProc> backends(kBackends);
  for (std::size_t i = 0; i < kBackends; ++i) {
    backends[i].cache_file = "/tmp/netemu_drain_soak_" + std::to_string(seed) +
                             "_" + std::to_string(i) + ".json";
    std::remove(backends[i].cache_file.c_str());
    std::remove((backends[i].cache_file + ".wal").c_str());
    if (!start_backend(backends[i], serve_bin, &out.error)) return out;
  }

  FleetRouter::Options options;
  for (auto& b : backends) options.backends.push_back({b.port, ""});
  options.health.failure_threshold = 2;
  options.health.open_cooldown_ms = 200;
  options.probe_interval_ms = 50;
  options.client.max_attempts = 2;
  options.client.base_backoff_ms = 1;
  options.client.max_backoff_ms = 20;
  options.client.attempt_timeout_ms = 5000;
  FleetRouter router(options);

  // Reuse the kill scheduler: same spacing rules, SIGTERM instead.
  const std::vector<ProcessFault> schedule =
      process_fault_schedule(seed, kBackends, total_requests, terms);
  std::size_t next_fault = 0;

  // Observe a draining backend's exit: assert clean + fast, mark it down.
  const auto reap_drains = [&] {
    for (auto& b : backends) {
      if (!b.draining || b.proc->running()) continue;
      b.draining = false;
      b.down = true;
      ++out.terms;
      if (b.proc->exit_status() == 0) ++out.clean_exits;
      const double drain_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - b.term_sent)
              .count();
      out.worst_drain_ms = std::max(out.worst_drain_ms, drain_ms);
    }
  };

  for (std::uint64_t i = 0; i < total_requests; ++i) {
    reap_drains();
    for (std::size_t b = 0; b < kBackends; ++b) {
      if (backends[b].down && backends[b].restart_at <= i) {
        if (!start_backend(backends[b], serve_bin, &out.error)) return out;
      }
    }
    while (next_fault < schedule.size() &&
           schedule[next_fault].at_request <= i) {
      const ProcessFault& f = schedule[next_fault++];
      BackendProc& victim = backends[f.backend];
      if (!victim.draining && !victim.down) {
        ::kill(victim.proc->pid(), SIGTERM);  // graceful: drain, then exit 0
        victim.draining = true;
        victim.term_sent = std::chrono::steady_clock::now();
        victim.restart_at = f.at_request + f.down_for_requests;
      }
    }

    const double n = 4096 + static_cast<double>(seed) * 1e6 +
                     static_cast<double>(i);
    const FleetRouter::Result r = router.request(query_for(n));
    if (!r.ok || !r.doc["ok"].as_bool()) {
      ++out.unanswered;
    } else if (r.doc["result"]["n"].as_number() != n) {
      ++out.mismatches;
    }
  }

  // Let stragglers finish draining (well past the 2s bound under test).
  for (auto& b : backends) {
    if (!b.draining) continue;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (b.proc->running() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  reap_drains();

  router.stop();
  for (auto& b : backends) {
    b.proc->terminate(2000);
    std::remove(b.cache_file.c_str());
    std::remove((b.cache_file + ".wal").c_str());
  }
  out.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const auto first_seed =
      static_cast<std::uint64_t>(cli.get_int("first-seed", 1));
  const auto requests =
      static_cast<std::uint64_t>(cli.get_int("requests", 160));
  const int terms = static_cast<int>(cli.get_int("terms", 2));
  const std::string serve_bin =
      cli.get("serve-bin", bench::default_serve_bin(cli.program()));

  bench::print_header("drain soak: 3 backends, SIGTERM rolling restarts");
  std::cout << "backend: " << serve_bin << "\n"
            << requests << " requests/seed, " << terms
            << " SIGTERM/restart faults, seeds " << first_seed << ".."
            << (first_seed + seeds - 1) << "\n\n";

  bench::Verdict verdict;
  Table t({"seed", "req", "lost", "wrong", "terms", "clean", "worst_drain_ms",
           "secs"});
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const SeedResult r = run_seed(first_seed + s, requests, terms, serve_bin);
    t.add_row({Table::integer(std::int64_t(r.seed)),
               Table::integer(std::int64_t(r.requests)),
               Table::integer(std::int64_t(r.unanswered)),
               Table::integer(std::int64_t(r.mismatches)),
               Table::integer(std::int64_t(r.terms)),
               Table::integer(std::int64_t(r.clean_exits)),
               Table::num(r.worst_drain_ms, 1),
               Table::num(r.secs, 2)});

    const std::string tag = "seed " + std::to_string(r.seed);
    verdict.check(r.error.empty(), tag + ": harness ran (" +
                                       (r.error.empty() ? "ok" : r.error) +
                                       ")");
    if (!r.error.empty()) continue;
    verdict.check(r.unanswered == 0, tag + ": zero lost queries");
    verdict.check(r.mismatches == 0, tag + ": zero wrong answers");
    verdict.check(r.terms > 0, tag + ": schedule SIGTERM'd a backend");
    verdict.check(r.clean_exits == r.terms,
                  tag + ": every drained backend exited 0");
    verdict.check(r.worst_drain_ms < 2000.0,
                  tag + ": every drain finished under 2s (worst " +
                      std::to_string(r.worst_drain_ms) + " ms)");
  }
  t.print(std::cout);

  std::cout << "\n"
            << (verdict.failures() == 0
                    ? "SOAK PASS: graceful drain under rolling SIGTERM"
                    : "SOAK FAIL")
            << "\n";
  return verdict.exit_code();
}
