// fleet_soak: the fleet acceptance gauntlet.  For each seed it starts THREE
// real netemu_serve backend processes (journaling caches, ephemeral ports),
// fronts them with a FleetRouter, and drives a stream of uniquely-addressed
// queries while a deterministic schedule hard-kills (SIGKILL) and restarts
// backends mid-flight.
//
// Invariants checked per seed (exit nonzero on any failure):
//   * zero lost queries: every request gets an answer — a down backend's
//     traffic fails over to the next rendezvous choice;
//   * zero wrong answers: every response echoes the unique size it asked
//     about (no cross-wiring through failover or connection pools);
//   * crash recovery is WARM: each backend is seeded with a "warm" query
//     before the faults start; after a kill -9 + restart, re-asking that
//     backend its warm query directly must be a cache hit (cache_hit=true —
//     served from the WAL-replayed cache, not recomputed);
//   * the breaker actually worked: every kill shows up as an ejection.
//
// Reproduce one seed exactly:  fleet_soak --seeds 1 --first-seed <s>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "netemu/faultline/process.hpp"
#include "netemu/fleet/router.hpp"
#include "netemu/service/client.hpp"
#include "netemu/util/cli.hpp"
#include "netemu/util/json.hpp"
#include "netemu/util/table.hpp"

using namespace netemu;

namespace {

constexpr std::size_t kBackends = 3;

struct BackendProc {
  std::unique_ptr<ManagedProcess> proc;
  std::uint16_t port = 0;       // pinned after the first (ephemeral) bind
  std::string cache_file;
  std::uint64_t restart_at = 0; // request index to restart at (when down)
  bool down = false;
  int kills = 0;
};

struct SeedResult {
  std::uint64_t seed = 0;
  std::uint64_t requests = 0;
  std::uint64_t unanswered = 0;   ///< lost queries (must be 0)
  std::uint64_t mismatches = 0;   ///< wrong answers (must be 0)
  std::uint64_t failovers = 0;
  std::uint64_t ejections = 0;
  int kills = 0;
  int warm_checks = 0;        ///< post-restart WAL-recovery probes made
  int warm_failures = 0;      ///< ... that missed the cache (must be 0)
  std::string error;          ///< harness-level failure (spawn, parse, ...)
  double secs = 0.0;
};

/// Start (or restart) a backend and block until it prints its listen line.
/// First start passes --port 0; restarts pin the original port.
bool start_backend(BackendProc& b, const std::string& serve_bin,
                   std::string* error) {
  b.proc = std::make_unique<ManagedProcess>();
  bench::ServeSpawn spawn;
  spawn.port = b.port;  // 0 on first start
  spawn.cache_file = b.cache_file;
  if (!bench::spawn_serve(*b.proc, serve_bin, spawn, &b.port, error)) {
    return false;
  }
  b.down = false;
  return true;
}

Json query_for(double n) {
  Json q = Json::object();
  q["op"] = "bandwidth";
  q["family"] = "Mesh";
  q["k"] = 2;
  q["n"] = n;
  return q;
}

SeedResult run_seed(std::uint64_t seed, std::uint64_t total_requests,
                    int kills, const std::string& serve_bin, bool hedge) {
  SeedResult out;
  out.seed = seed;
  out.requests = total_requests;
  const auto start = std::chrono::steady_clock::now();

  std::vector<BackendProc> backends(kBackends);
  for (std::size_t i = 0; i < kBackends; ++i) {
    backends[i].cache_file = "/tmp/netemu_fleet_soak_" + std::to_string(seed) +
                             "_" + std::to_string(i) + ".json";
    std::remove(backends[i].cache_file.c_str());
    std::remove((backends[i].cache_file + ".wal").c_str());
    if (!start_backend(backends[i], serve_bin, &out.error)) return out;
  }

  FleetRouter::Options options;
  for (auto& b : backends) options.backends.push_back({b.port, ""});
  options.health.failure_threshold = 2;
  options.health.open_cooldown_ms = 200;
  options.probe_interval_ms = 50;
  options.client.max_attempts = 2;
  options.client.base_backoff_ms = 1;
  options.client.max_backoff_ms = 20;
  options.client.attempt_timeout_ms = 5000;
  options.hedge = hedge;
  FleetRouter router(options);

  // Warm phase: find one query owned by each backend (by rendezvous rank)
  // and ask that backend directly, so its cache — and, because journaling
  // is on by default, its WAL — holds the result before any kill.
  std::vector<Json> warm_query(kBackends);
  std::vector<bool> warmed(kBackends, false);
  std::size_t found = 0;
  for (double probe = 0; found < kBackends && probe < 1000; ++probe) {
    const double n = 8192 + static_cast<double>(seed) * 1e7 + probe;
    const Json q = query_for(n);
    const std::size_t owner = router.rank_for(q)[0];
    if (warmed[owner]) continue;
    Client direct;
    std::string cerror;
    if (!direct.connect(backends[owner].port, &cerror)) {
      out.error = "warm connect: " + cerror;
      return out;
    }
    const auto doc = direct.request(q, &cerror);
    if (!doc || !(*doc)["ok"].as_bool()) {
      out.error = "warm query failed: " + cerror;
      return out;
    }
    warm_query[owner] = q;
    warmed[owner] = true;
    ++found;
  }

  // After a kill -9 + restart, the backend's FIRST repeat of its warm query
  // must come from the WAL-recovered cache: cache_hit=true, no recompute.
  const auto check_warm_recovery = [&](std::size_t i) {
    ++out.warm_checks;
    Client direct;
    std::string cerror;
    std::optional<Json> doc;
    if (direct.connect(backends[i].port, &cerror)) {
      doc = direct.request(warm_query[i], &cerror);
    }
    if (!doc || !(*doc)["ok"].as_bool() || !(*doc)["cache_hit"].as_bool()) {
      ++out.warm_failures;
      std::cerr << "seed " << seed << ": backend " << i
                << " NOT warm after restart: "
                << (doc ? (*doc).dump() : cerror) << "\n";
    }
  };

  const std::vector<ProcessFault> schedule =
      process_fault_schedule(seed, kBackends, total_requests, kills);
  std::size_t next_fault = 0;

  for (std::uint64_t i = 0; i < total_requests; ++i) {
    // Restarts due at this point in the stream.
    for (std::size_t b = 0; b < kBackends; ++b) {
      if (backends[b].down && backends[b].restart_at <= i) {
        if (!start_backend(backends[b], serve_bin, &out.error)) return out;
        check_warm_recovery(b);
      }
    }
    // Kills scheduled just before this request.
    while (next_fault < schedule.size() &&
           schedule[next_fault].at_request <= i) {
      const ProcessFault& f = schedule[next_fault++];
      BackendProc& victim = backends[f.backend];
      if (!victim.down) {
        victim.proc->kill_hard();  // SIGKILL: no shutdown save, WAL only
        victim.down = true;
        victim.restart_at = f.at_request + f.down_for_requests;
        ++victim.kills;
        ++out.kills;
      }
    }

    const double n = 4096 + static_cast<double>(seed) * 1e6 +
                     static_cast<double>(i);
    const FleetRouter::Result r = router.request(query_for(n));
    if (!r.ok || !r.doc["ok"].as_bool()) {
      ++out.unanswered;
    } else if (r.doc["result"]["n"].as_number() != n) {
      ++out.mismatches;
    }
  }

  // Restart anything still down so every kill gets its recovery check.
  for (std::size_t b = 0; b < kBackends; ++b) {
    if (backends[b].down) {
      if (!start_backend(backends[b], serve_bin, &out.error)) return out;
      check_warm_recovery(b);
    }
  }

  const FleetRouter::Stats stats = router.stats();
  out.failovers = stats.failovers;
  for (const auto& b : stats.backends) out.ejections += b.ejections;
  router.stop();

  for (auto& b : backends) {
    b.proc->terminate(2000);
    std::remove(b.cache_file.c_str());
    std::remove((b.cache_file + ".wal").c_str());
  }
  out.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const auto first_seed =
      static_cast<std::uint64_t>(cli.get_int("first-seed", 1));
  const auto requests =
      static_cast<std::uint64_t>(cli.get_int("requests", 160));
  const int kills = static_cast<int>(cli.get_int("kills", 2));
  const bool hedge = cli.has("hedge");
  const std::string serve_bin =
      cli.get("serve-bin", bench::default_serve_bin(cli.program()));

  bench::print_header("fleet soak: 3 backends, kill -9 mid-flight");
  std::cout << "backend: " << serve_bin << "\n"
            << requests << " requests/seed, " << kills
            << " kill/restart faults, hedge " << (hedge ? "on" : "off")
            << ", seeds " << first_seed << ".." << (first_seed + seeds - 1)
            << "\n\n";

  bench::Verdict verdict;
  Table t({"seed", "req", "lost", "wrong", "failovers", "ejections", "kills",
           "warm_ok", "secs"});
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const SeedResult r =
        run_seed(first_seed + s, requests, kills, serve_bin, hedge);
    t.add_row({Table::integer(std::int64_t(r.seed)),
               Table::integer(std::int64_t(r.requests)),
               Table::integer(std::int64_t(r.unanswered)),
               Table::integer(std::int64_t(r.mismatches)),
               Table::integer(std::int64_t(r.failovers)),
               Table::integer(std::int64_t(r.ejections)),
               Table::integer(std::int64_t(r.kills)),
               Table::integer(std::int64_t(r.warm_checks - r.warm_failures)),
               Table::num(r.secs, 2)});

    const std::string tag = "seed " + std::to_string(r.seed);
    verdict.check(r.error.empty(), tag + ": harness ran (" +
                                       (r.error.empty() ? "ok" : r.error) +
                                       ")");
    if (!r.error.empty()) continue;
    verdict.check(r.unanswered == 0, tag + ": zero lost queries");
    verdict.check(r.mismatches == 0, tag + ": zero wrong answers");
    verdict.check(r.kills > 0, tag + ": schedule killed a backend");
    verdict.check(r.warm_checks >= r.kills,
                  tag + ": every kill got a recovery check");
    verdict.check(r.warm_failures == 0,
                  tag + ": restarted backends WAL-warm (cache_hit on first "
                        "repeat)");
    verdict.check(r.ejections > 0, tag + ": breaker ejected the dead backend");
  }
  t.print(std::cout);

  std::cout << "\n"
            << (verdict.failures() == 0 ? "SOAK PASS: fleet survived kill -9"
                                        : "SOAK FAIL")
            << "\n";
  return verdict.exit_code();
}
