// Ablation (DESIGN.md §4): bisection estimators (exact vs Kernighan-Lin vs
// spectral lower bound) and traffic sampling (exact all-pairs congestion
// witness vs sampled batches).

#include "bench_common.hpp"
#include "netemu/cut/bisection.hpp"
#include "netemu/cut/spectral.hpp"
#include "netemu/embedding/congestion_witness.hpp"
#include "netemu/routing/router.hpp"
#include "netemu/traffic/traffic_graph.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header("Ablation: bisection estimators and traffic sampling");
  Prng rng(37);
  Verdict verdict;

  // --- bisection: spectral <= exact <= KL on small instances ---------------
  Table t({"machine", "n", "spectral LB", "exact", "KL heuristic",
           "KL/exact"});
  const std::pair<Family, unsigned> machines[] = {
      {Family::kMesh, 2}, {Family::kTree, 1}, {Family::kDeBruijn, 1},
      {Family::kXTree, 1}};
  for (const auto& [f, k] : machines) {
    const Machine m = make_machine(f, 16, k, rng);
    const Bisection exact = exact_bisection(m.graph);
    const Bisection kl = kl_bisection(m.graph, rng, 16);
    const SpectralResult sp = fiedler_value(m.graph, rng);
    const double ratio = static_cast<double>(kl.width) /
                         static_cast<double>(std::max<std::uint64_t>(1,
                                                                     exact.width));
    t.add_row({m.name, Table::integer((long long)m.graph.num_vertices()),
               Table::num(sp.bisection_lb, 2),
               Table::integer((long long)exact.width),
               Table::integer((long long)kl.width), Table::num(ratio, 2)});
    verdict.check(sp.bisection_lb <= exact.width + 1e-6,
                  m.name + ": spectral is a lower bound");
    verdict.check(kl.width >= exact.width, m.name + ": KL upper-bounds");
    verdict.check(ratio <= 1.5, m.name + ": KL within 1.5x of exact");
  }
  t.print(std::cout);

  // --- KL at scale vs spectral certificate ----------------------------------
  std::cout << "\nKL vs spectral certificate at larger sizes (Mesh2):\n\n";
  Table t2({"side", "KL width", "spectral LB", "true width", "KL/true"});
  for (std::uint32_t side : {8u, 16u, 32u}) {
    const Machine m = make_mesh({side, side});
    const Bisection kl = kl_bisection(m.graph, rng, 12);
    const SpectralResult sp = fiedler_value(m.graph, rng);
    t2.add_row({Table::integer(side), Table::integer((long long)kl.width),
                Table::num(sp.bisection_lb, 1), Table::integer(side),
                Table::num(static_cast<double>(kl.width) / side, 2)});
    verdict.check(kl.width >= side, "KL upper-bounds true mesh width");
    verdict.check(kl.width <= 2 * side, "KL within 2x of true mesh width");
  }
  t2.print(std::cout);

  // --- traffic sampling: sampled batch congestion -> exact witness ----------
  std::cout << "\nSampled-batch congestion converges to the all-pairs "
               "witness (Mesh2(256)):\n\n";
  const Machine host = make_mesh({16, 16});
  std::vector<Vertex> procs(256);
  for (std::size_t i = 0; i < 256; ++i) procs[i] = static_cast<Vertex>(i);
  const Multigraph kn = symmetric_traffic_graph(256, procs);
  const CongestionWitness exact_w = congestion_witness(host, kn, rng);
  Table t3({"batch size", "beta from batch", "beta exact witness", "ratio"});
  const auto traffic = TrafficDistribution::symmetric(procs);
  double last_ratio = 0;
  for (std::size_t msgs : {2048u, 8192u, 32768u}) {
    const auto batch = traffic.batch(msgs, rng);
    const Multigraph tb = traffic_graph_from_batch(256, batch);
    const CongestionWitness w = congestion_witness(host, tb, rng);
    const double ratio = w.beta_graph / exact_w.beta_graph;
    last_ratio = ratio;
    t3.add_row({Table::integer((long long)msgs), Table::num(w.beta_graph, 2),
                Table::num(exact_w.beta_graph, 2), Table::num(ratio, 3)});
  }
  t3.print(std::cout);
  verdict.check(last_ratio > 0.6 && last_ratio < 1.7,
                "large sampled batch agrees with exact witness");

  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
