// chaos_soak: the faultline acceptance gauntlet.  For each seed it builds a
// deterministic fault plan (connection drops, partial reads/writes, slow
// I/O, disk-write failures, torn cache files, worker stalls), routes the
// whole service stack — server sockets, client sockets, executor workers,
// cache persistence — through one injector, and hammers the daemon with
// concurrent retrying clients issuing uniquely-addressed queries.
//
// Invariants checked per seed (exit nonzero on any failure):
//   * no lost, duplicated, or cross-wired responses: every request's result
//     must echo the unique size it asked about;
//   * no deadlocks: the soak finishes (the watchdog reaps hung flights);
//   * no cache corruption: after the daemon (and its possibly torn final
//     save) shuts down, a fresh ResultCache loads the file without crashing
//     and every recovered entry is intact JSON.
//
// Reproduce one seed exactly:  chaos_soak --seeds 1 --first-seed <s>
// or override the plan wholesale:  chaos_soak --plan 'seed=7,drop=0.1,...'

#include <atomic>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "netemu/faultline/fault_plan.hpp"
#include "netemu/faultline/injector.hpp"
#include "netemu/service/client.hpp"
#include "netemu/service/result_cache.hpp"
#include "netemu/service/server.hpp"
#include "netemu/util/cli.hpp"
#include "netemu/util/json.hpp"
#include "netemu/util/table.hpp"

using namespace netemu;

namespace {

struct SeedResult {
  std::uint64_t seed = 0;
  std::string spec;
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;    ///< requests with no ok response
  std::uint64_t mismatches = 0;  ///< responses echoing the wrong query
  std::uint64_t retries = 0;     ///< client transport retries + backoffs
  FaultInjector::Counts faults;
  std::size_t cache_reloaded = 0;  ///< entries recovered after shutdown
  std::uint64_t cache_corrupt = 0;
  bool cache_load_crashed = false;  // reserved: a crash aborts the binary
  double secs = 0.0;
};

SeedResult run_seed(const FaultPlan& plan, std::size_t clients,
                    std::uint64_t requests_per_client,
                    const std::string& cache_path) {
  SeedResult out;
  out.seed = plan.seed;
  out.spec = plan.spec();
  out.requests = clients * requests_per_client;
  std::remove(cache_path.c_str());

  FaultInjector injector(plan);
  const auto start = std::chrono::steady_clock::now();
  {
    QueryExecutor::Options exec_options;
    exec_options.threads = 4;
    exec_options.max_queue = 64;
    exec_options.hang_timeout_ms = 2000;
    exec_options.cache_file = cache_path;
    exec_options.faults = &injector;
    QueryExecutor executor(std::move(exec_options));

    Server::Options server_options;
    server_options.port = 0;
    server_options.faults = &injector;
    Server server(executor, server_options);
    std::string error;
    if (!server.start(&error)) {
      std::cerr << "chaos_soak: " << error << "\n";
      out.failures = out.requests;
      return out;
    }

    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> mismatches{0};
    std::atomic<std::uint64_t> retries{0};
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        Client::RetryPolicy policy;
        policy.max_attempts = 12;
        policy.base_backoff_ms = 1;
        policy.max_backoff_ms = 50;
        policy.attempt_timeout_ms = 5000;
        policy.jitter_seed = plan.seed * 1000 + c + 1;
        Client client(policy);
        client.set_fault_injector(&injector);
        if (!client.connect(server.port())) {
          failures.fetch_add(requests_per_client);
          return;
        }
        for (std::uint64_t i = 0; i < requests_per_client; ++i) {
          // Unique size => unique content address => the response's result
          // must echo it.  A wrong echo is a lost/duplicated/cross-wired
          // response; periodic cache saves shake the persistence path.
          const double n =
              4096 + static_cast<double>(plan.seed) * 1000000 +
              static_cast<double>(c) * 10000 + static_cast<double>(i);
          Json q = Json::object();
          q["op"] = "bandwidth";
          q["family"] = "Mesh";
          q["k"] = 2;
          q["n"] = n;
          const auto doc = client.request(q);
          if (!doc || !(*doc)["ok"].as_bool()) {
            failures.fetch_add(1);
          } else if ((*doc)["result"]["n"].as_number() != n) {
            mismatches.fetch_add(1);
          }
          if (i % 16 == 15) executor.save_cache();  // may fail/tear: fine
        }
        retries.fetch_add(client.retries());
      });
    }
    for (auto& t : threads) t.join();
    out.failures = failures.load();
    out.mismatches = mismatches.load();
    out.retries = retries.load();
    server.stop();
  }  // executor destructor: final (possibly torn) cache save

  out.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  out.faults = injector.counts();

  // Crash-recovery check: the loader must survive whatever the faults left
  // on disk and every recovered entry must still be intact JSON.
  ResultCache reloaded(1 << 16, cache_path);
  if (reloaded.load()) {
    out.cache_reloaded = reloaded.size();
    out.cache_corrupt = reloaded.corrupt_entries();
  }
  std::remove(cache_path.c_str());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 10));
  const auto first_seed =
      static_cast<std::uint64_t>(cli.get_int("first-seed", 1));
  const auto clients = static_cast<std::size_t>(cli.get_int("clients", 4));
  const auto requests =
      static_cast<std::uint64_t>(cli.get_int("requests", 48));
  const std::string cache_path =
      cli.get("cache-file", "/tmp/netemu_chaos_soak_cache.json");
  const std::string plan_override = cli.get("plan");

  bench::print_header("chaos soak: service stack under injected faults");
  std::cout << clients << " clients x " << requests
            << " requests per seed; plans derived from seeds "
            << first_seed << ".." << (first_seed + seeds - 1) << "\n\n";

  bench::Verdict verdict;
  Table t({"seed", "req", "fail", "mismatch", "retries", "faults", "drops",
           "torn", "stalls", "reloaded", "quarantined", "secs"});
  for (std::uint64_t s = 0; s < seeds; ++s) {
    FaultPlan plan;
    if (!plan_override.empty()) {
      std::string error;
      const auto parsed = FaultPlan::parse(plan_override, &error);
      if (!parsed) {
        std::cerr << "chaos_soak: bad --plan: " << error << "\n";
        return 1;
      }
      plan = *parsed;
      plan.seed = first_seed + s;
    } else {
      plan = FaultPlan::for_seed(first_seed + s);
    }

    const SeedResult r = run_seed(plan, clients, requests, cache_path);
    t.add_row({Table::integer(std::int64_t(r.seed)),
               Table::integer(std::int64_t(r.requests)),
               Table::integer(std::int64_t(r.failures)),
               Table::integer(std::int64_t(r.mismatches)),
               Table::integer(std::int64_t(r.retries)),
               Table::integer(std::int64_t(r.faults.total())),
               Table::integer(std::int64_t(r.faults.drops)),
               Table::integer(std::int64_t(r.faults.torn_writes)),
               Table::integer(std::int64_t(r.faults.stalls)),
               Table::integer(std::int64_t(r.cache_reloaded)),
               Table::integer(std::int64_t(r.cache_corrupt)),
               Table::num(r.secs, 2)});

    const std::string tag = "seed " + std::to_string(r.seed) + " (" +
                            r.spec + ")";
    verdict.check(r.failures == 0, tag + ": no lost responses");
    verdict.check(r.mismatches == 0, tag + ": no duplicated or cross-wired "
                                           "responses");
    verdict.check(r.faults.total() > 0, tag + ": plan injected faults");
  }
  t.print(std::cout);

  std::cout << "\n" << (verdict.failures() == 0
                            ? "SOAK PASS: all seeds survived"
                            : "SOAK FAIL")
            << "\n";
  return verdict.exit_code();
}
