#pragma once
// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures.  Each bench is a standalone executable printing an ASCII
// table plus a PASS/CHECK verdict line per row, so `for b in build/bench/*`
// produces the whole evaluation.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "netemu/bandwidth/theory.hpp"
#include "netemu/faultline/process.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/util/stats.hpp"
#include "netemu/util/table.hpp"

namespace netemu::bench {

// ------------------------------------------------------- backend processes
// The soak harnesses (fleet_soak, drain_soak, overload_soak) and
// scatter_speedup all spawn real netemu_serve child processes; the
// fork/exec + listen-line handshake lives here so they share one copy.

/// Default path of the netemu_serve binary for a bench living in
/// build/bench/ (override with --serve-bin).
inline std::string default_serve_bin(const std::string& program) {
  const std::size_t slash = program.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : program.substr(0, slash);
  return dir + "/../examples/netemu_serve";
}

/// Arguments for one spawned netemu_serve backend.  `port` 0 binds an
/// ephemeral port (the bound port is parsed back out of the listen line);
/// an empty `cache_file` runs memory-only (--no-persist).
struct ServeSpawn {
  std::uint16_t port = 0;
  std::string cache_file;
  int threads = 2;
  int queue = 64;
  std::vector<std::string> extra_args;  ///< appended verbatim
};

/// fork/exec one netemu_serve and block until it prints its listen line;
/// `*port_out` (when non-null) receives the bound port.  False + *error on
/// spawn failure, no listen line within 10 s, or an unparseable one.
/// Teardown is the caller's choice: ManagedProcess RAII / kill_hard() for a
/// crash, terminate() for a graceful SIGTERM drain.
inline bool spawn_serve(ManagedProcess& proc, const std::string& serve_bin,
                        const ServeSpawn& spawn, std::uint16_t* port_out,
                        std::string* error) {
  std::vector<std::string> argv = {
      serve_bin,
      "--port", std::to_string(spawn.port),
      "--threads", std::to_string(spawn.threads),
      "--queue", std::to_string(spawn.queue),
  };
  if (spawn.cache_file.empty()) {
    argv.push_back("--no-persist");
  } else {
    argv.push_back("--cache-file");
    argv.push_back(spawn.cache_file);
  }
  argv.insert(argv.end(), spawn.extra_args.begin(), spawn.extra_args.end());
  if (!proc.start(argv, error)) return false;
  std::string line;
  if (!proc.read_stdout_line(line, 10000)) {
    *error = serve_bin + ": no listen line within 10s (exit status " +
             std::to_string(proc.exit_status()) + ")";
    return false;
  }
  const std::string prefix = "listening on 127.0.0.1:";
  if (line.rfind(prefix, 0) != 0) {
    *error = "unexpected listen line: " + line;
    return false;
  }
  if (port_out) {
    *port_out =
        static_cast<std::uint16_t>(std::stoi(line.substr(prefix.size())));
  }
  return true;
}

/// Machine ladder: instances of one family at geometrically growing sizes.
struct Ladder {
  Family family;
  unsigned k;
  std::vector<std::size_t> targets;
  const char* note = "";
};

inline std::string ladder_label(const Ladder& l) {
  std::string s = family_name(l.family);
  if (family_is_dimensional(l.family)) s += std::to_string(l.k);
  return s;
}

/// The Table 4 measurement ladders.  Sizes are capped per family by the
/// router in use: algebraically-routed families scale further than the
/// BFS-routed ones (whose distance-field cache is the limit).
inline std::vector<Ladder> table4_ladders() {
  return {
      {Family::kLinearArray, 1, {64, 128, 256, 512}},
      {Family::kRing, 1, {64, 128, 256, 512}},
      {Family::kGlobalBus, 1, {64, 128, 256, 512}},
      {Family::kTree, 1, {63, 127, 255, 511, 1023}},
      {Family::kFatTree, 1, {63, 127, 255, 511, 1023}},
      {Family::kWeakPPN, 1, {63, 127, 255, 511, 1023}},
      {Family::kXTree, 1, {63, 127, 255, 511, 1023, 2047, 4095}},
      {Family::kMesh, 2, {64, 256, 1024, 4096}},
      {Family::kMesh, 3, {64, 512, 4096}},
      {Family::kTorus, 2, {64, 256, 1024, 4096}},
      {Family::kXGrid, 2, {64, 256, 1024, 4096}},
      {Family::kMeshOfTrees, 2, {176, 736, 3008}, "sides 8/16/32"},
      {Family::kMultigrid, 2, {85, 341, 1365, 5461}},
      {Family::kPyramid, 2, {85, 341, 1365, 5461}},
      {Family::kButterfly, 1, {192, 448, 1024, 2304, 5120, 11264}},
      {Family::kWrappedButterfly, 1, {160, 384, 896, 2048, 4608}},
      {Family::kDeBruijn, 1, {64, 256, 1024, 4096}},
      {Family::kShuffleExchange, 1, {64, 256, 1024, 4096, 8192}},
      {Family::kCCC, 1, {160, 384, 896, 2048, 4608}},
      {Family::kHypercube, 1, {64, 256, 1024, 4096}},
      {Family::kMultibutterfly, 1, {192, 448, 1024, 2304, 5120}},
      {Family::kExpander, 1, {64, 256, 1024, 4096}},
  };
}

/// Exit-code accumulator: benches return nonzero when a shape check fails,
/// without aborting the remaining rows.
class Verdict {
 public:
  void check(bool ok, const std::string& what) {
    if (!ok) {
      ++failures_;
      std::cout << "CHECK FAILED: " << what << "\n";
    }
  }
  int exit_code() const { return failures_ == 0 ? 0 : 1; }
  int failures() const { return failures_; }

 private:
  int failures_ = 0;
};

inline void print_header(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n\n";
}

/// Minimal ASCII log-log chart: one row per x, bars proportional to
/// lg(value); series glyphs overlaid left to right.
inline void ascii_loglog_chart(
    const std::vector<double>& xs,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    int width = 60) {
  double lo = 1e300, hi = 0;
  for (const auto& [name, ys] : series) {
    for (double y : ys) {
      if (y > 0) {
        lo = std::min(lo, y);
        hi = std::max(hi, y);
      }
    }
  }
  if (hi <= lo) hi = lo + 1;
  const double llo = std::log2(lo), lhi = std::log2(hi);
  const char glyphs[] = "*o+x";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::string line(static_cast<std::size_t>(width) + 1, ' ');
    for (std::size_t s = 0; s < series.size(); ++s) {
      const double y = series[s].second[i];
      if (y <= 0) continue;
      const int pos = static_cast<int>(
          (std::log2(y) - llo) / (lhi - llo) * width);
      line[static_cast<std::size_t>(std::clamp(pos, 0, width))] =
          glyphs[s % 4];
    }
    std::printf("  %10.0f |%s\n", xs[i], line.c_str());
  }
  std::printf("  %10s  ", "");
  for (std::size_t s = 0; s < series.size(); ++s) {
    std::printf("[%c %s] ", glyphs[s % 4], series[s].first.c_str());
  }
  std::printf("   (log2 scale %.1f..%.1f)\n", llo, lhi);
}

}  // namespace netemu::bench
