// Reproduces Table 2: maximum host sizes for efficient emulation of
// j-dimensional Mesh-of-Trees, Multigrids, and Pyramids.
//
// These guests share the mesh's bisection (β = Θ(n^{(j-1)/j})) but have
// logarithmic Λ, so their Table-2 entries coincide with Table 1's — which
// the bench verifies mechanically row by row.

#include "bench_common.hpp"
#include "netemu/emulation/host_size.hpp"
#include "netemu/emulation/tables.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header(
      "Table 2: max host sizes, guests = j-dim MeshOfTrees / Multigrid / "
      "Pyramid");
  Verdict verdict;

  paper_table2({1, 2, 3}, 1 << 20).print(std::cout);

  // Cross-check the paper's observation that Theorem 3/4 guests inherit the
  // mesh exponents: every (host, j) entry must match the Mesh_j guest entry.
  const auto hosts = standard_hosts();
  for (unsigned j = 1; j <= 3; ++j) {
    for (const HostSpec& host : hosts) {
      const auto mesh = max_host_size(Family::kMesh, j, 1 << 20, host);
      for (Family guest : {Family::kMeshOfTrees, Family::kMultigrid,
                           Family::kPyramid}) {
        const auto entry = max_host_size(guest, j, 1 << 20, host);
        verdict.check(entry.symbolic == mesh.symbolic,
                      std::string(family_name(guest)) + std::to_string(j) +
                          " on " + host.label() + ": " + entry.symbolic +
                          " != mesh entry " + mesh.symbolic);
      }
    }
  }
  std::cout << "\nAll Table 2 entries match the corresponding Table 1 mesh "
               "entries (guests share the mesh's bandwidth exponent): "
            << (verdict.failures() == 0 ? "yes" : "NO") << "\n";

  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
