// Reproduces Table 1: maximum host sizes for efficient emulation of
// j-dimensional Meshes, Tori, and X-Grids, derived mechanically from the
// bandwidth registry (symbolic Θ-form + numeric root at |G| = 2^20).
//
// Empirical spot-check: for a 2-d mesh guest on a linear-array host the
// derived maximum is Θ(|G|^{1/2}); we run the actual emulation engine with
// hosts below and above that threshold and verify the measured inefficiency
// I = |H|·S/|G| degrades across it.

#include "bench_common.hpp"
#include "netemu/emulation/engine.hpp"
#include "netemu/emulation/tables.hpp"

using namespace netemu;
using namespace netemu::bench;

int main() {
  print_header("Table 1: max host sizes, guests = j-dim Mesh / Torus / XGrid");
  Verdict verdict;

  paper_table1({1, 2, 3}, 1 << 20).print(std::cout);

  // --- empirical spot check ------------------------------------------------
  std::cout << "\nSpot check: Mesh2(32x32) guest on LinearArray hosts.\n"
               "Derived max host = Θ(|G|^{1/2}) = 32 here; inefficiency\n"
               "I = |H|·S/|G| should stay O(1) below and grow above it.\n\n";
  Prng rng(7);
  const Machine guest = make_mesh({32, 32});
  Table t({"|H|", "slowdown S", "inefficiency I", "load bound n/m"});
  std::vector<double> ineff;
  for (std::size_t m : {8, 32, 128, 512}) {
    const Machine host = make_linear_array(m);
    EmulationOptions opt;
    opt.guest_steps = 2;
    const EmulationResult r = emulate(guest, host, rng, opt);
    const double inefficiency =
        static_cast<double>(m) * r.slowdown / 1024.0;
    ineff.push_back(inefficiency);
    t.add_row({Table::integer(static_cast<long long>(m)),
               Table::num(r.slowdown, 1), Table::num(inefficiency, 2),
               Table::num(1024.0 / static_cast<double>(m), 1)});
  }
  t.print(std::cout);
  // Below the threshold the work overhead is a small constant; far above it
  // the bandwidth wall makes added processors pure waste.
  verdict.check(ineff.front() < 4.0, "inefficiency O(1) below threshold");
  verdict.check(ineff.back() > 2.0 * ineff.front(),
                "inefficiency grows past the bandwidth threshold");
  verdict.check(ineff[3] > ineff[1],
                "monotone degradation beyond max host size");

  std::cout << "\nfailures: " << verdict.failures() << "\n";
  return verdict.exit_code();
}
